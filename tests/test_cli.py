"""CLI tests (the pathalias command)."""

import pytest

from repro.cli import main

from tests.conftest import PAPER_1981_MAP


@pytest.fixture
def map_file(tmp_path):
    path = tmp_path / "d.map"
    path.write_text(PAPER_1981_MAP)
    return str(path)


class TestBasicInvocation:
    def test_tab_output_default(self, map_file, capsys):
        assert main(["-l", "unc", map_file]) == 0
        out = capsys.readouterr().out
        assert "phs\tduke!phs!%s" in out
        assert out.splitlines() == sorted(out.splitlines())

    def test_costs_option(self, map_file, capsys):
        assert main(["-l", "unc", "-c", map_file]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0] == "0\tunc\t%s"
        assert out[-1] == "3395\tstanford\tduke!research!ucbvax!%s@stanford"

    def test_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("a b(10)"))
        assert main(["-l", "a"]) == 0
        assert "b\tb!%s" in capsys.readouterr().out

    def test_ignore_case(self, tmp_path, capsys):
        path = tmp_path / "d.map"
        path.write_text("UNC Duke(10)")
        assert main(["-l", "unc", "-i", str(path)]) == 0
        assert "duke\tduke!%s" in capsys.readouterr().out

    def test_lex_scanner_same_output(self, map_file, capsys):
        main(["-l", "unc", "-c", map_file])
        hand = capsys.readouterr().out
        main(["-l", "unc", "-c", "--lex", map_file])
        lex = capsys.readouterr().out
        assert hand == lex


class TestOptions:
    def test_second_best(self, tmp_path, capsys):
        from tests.conftest import MOTOWN_MAP

        path = tmp_path / "d.map"
        path.write_text(MOTOWN_MAP)
        assert main(["-l", "princeton", "-s", "-c", str(path)]) == 0
        out = capsys.readouterr().out
        assert "500\tmotown\ttopaz!motown!%s" in out

    def test_no_back_links_reports_unreachable(self, tmp_path, capsys):
        path = tmp_path / "d.map"
        path.write_text("a b(10)\nleaf a(10)")
        assert main(["-l", "a", "--no-back-links", str(path)]) == 0
        err = capsys.readouterr().err
        assert "leaf: unreachable" in err

    def test_stats_on_stderr(self, map_file, capsys):
        assert main(["-l", "unc", "--stats", map_file]) == 0
        err = capsys.readouterr().err
        assert "nodes" in err and "scan" in err

    def test_warnings_on_stderr(self, tmp_path, capsys):
        path = tmp_path / "d.map"
        path.write_text("a a(10), b(10)")
        assert main(["-l", "a", "--warnings", str(path)]) == 0
        assert "warning" in capsys.readouterr().err


class TestToolOptions:
    def test_dot_to_file(self, map_file, tmp_path, capsys):
        out = tmp_path / "routes.dot"
        assert main(["-l", "unc", "--dot", str(out), map_file]) == 0
        dot = out.read_text()
        assert dot.startswith("digraph")
        assert '"unc" -> "duke"' in dot

    def test_dot_to_stdout(self, map_file, capsys):
        assert main(["-l", "unc", "--dot", "-", map_file]) == 0
        out = capsys.readouterr().out
        assert "digraph" in out

    def test_check_reports_on_stderr(self, tmp_path, capsys):
        path = tmp_path / "d.map"
        path.write_text("a b(10)\nb c(10)\nc b(10)")
        assert main(["-l", "a", "--check", str(path)]) == 0
        err = capsys.readouterr().err
        assert "asymmetric-link" in err
        assert "check:" in err

    def test_check_clean_map(self, tmp_path, capsys):
        path = tmp_path / "d.map"
        path.write_text("a b(10)\nb a(10)")
        assert main(["-l", "a", "--check", str(path)]) == 0
        assert "map is clean" in capsys.readouterr().err

    def test_report(self, map_file, capsys):
        assert main(["-l", "unc", "--report", map_file]) == 0
        err = capsys.readouterr().err
        assert "pathalias run report" in err
        assert "busiest relays:" in err

    def test_trace(self, map_file, capsys):
        assert main(["-l", "unc", "--trace", "mit-ai", map_file]) == 0
        err = capsys.readouterr().err
        assert "route to mit-ai (cost 3395)" in err
        assert "unc -> duke" in err

    def test_trace_unknown_host(self, map_file, capsys):
        assert main(["-l", "unc", "--trace", "zebra", map_file]) == 0
        assert "trace:" in capsys.readouterr().err


class TestFailures:
    def test_unknown_localhost(self, map_file, capsys):
        assert main(["-l", "ghost", map_file]) == 1
        assert "ghost" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["-l", "a", "/nonexistent/map"]) == 2
        assert "pathalias:" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "d.map"
        path.write_text("= broken =")
        assert main(["-l", "a", str(path)]) == 1
        err = capsys.readouterr().err
        assert "pathalias:" in err


class TestEngineSelection:
    def test_engines_agree_byte_for_byte(self, map_file, capsys):
        assert main(["-l", "unc", "--engine", "compact", map_file]) == 0
        compact = capsys.readouterr().out
        assert main(["-l", "unc", "--engine", "reference", map_file]) == 0
        reference = capsys.readouterr().out
        assert compact == reference
        assert "phs\tduke!phs!%s" in compact

    def test_compact_supports_trace_and_report(self, map_file, capsys):
        assert main(["-l", "unc", "--engine", "compact", "--report",
                     "--trace", "mit-ai", map_file]) == 0
        err = capsys.readouterr().err
        assert "pathalias run report" in err
        assert "route to mit-ai (cost 3395)" in err


class TestBatchMode:
    def test_batch_writes_all_sources(self, map_file, tmp_path, capsys):
        out = tmp_path / "paths"
        assert main(["--batch", str(out), map_file]) == 0
        written = sorted(p.name for p in out.iterdir())
        assert "paths.unc" in written and "paths.ucbvax" in written
        assert "phs\tduke!phs!%s" in (out / "paths.unc").read_text()
        assert "batch:" in capsys.readouterr().err

    def test_batch_parallel_jobs(self, map_file, tmp_path, capsys):
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        assert main(["--batch", str(serial), map_file]) == 0
        assert main(["--batch", str(parallel), "-j", "2", map_file]) == 0
        assert "jobs=2" in capsys.readouterr().err
        for path in serial.iterdir():
            assert (parallel / path.name).read_text() == path.read_text()

    def test_batch_parse_error(self, tmp_path, capsys):
        path = tmp_path / "d.map"
        path.write_text("= broken =")
        assert main(["--batch", str(tmp_path / "out"), str(path)]) == 1
        assert "pathalias:" in capsys.readouterr().err


class TestServiceCommands:
    def test_snapshot_and_lookup(self, map_file, tmp_path, capsys):
        snap = tmp_path / "routes.snap"
        assert main(["snapshot", "-o", str(snap), map_file]) == 0
        err = capsys.readouterr().err
        assert "snapshot:" in err and "sources" in err
        assert snap.exists()
        assert main(["lookup", str(snap), "phs", "honey",
                     "-l", "unc"]) == 0
        out = capsys.readouterr().out
        assert out.strip() == "800\tphs\tduke!phs!honey"

    def test_lookup_without_user_keeps_template(self, map_file,
                                                tmp_path, capsys):
        snap = tmp_path / "routes.snap"
        assert main(["snapshot", "-o", str(snap), map_file]) == 0
        capsys.readouterr()
        assert main(["lookup", str(snap), "phs", "-l", "unc"]) == 0
        assert "duke!phs!%s" in capsys.readouterr().out

    def test_lookup_miss_fails(self, map_file, tmp_path, capsys):
        snap = tmp_path / "routes.snap"
        assert main(["snapshot", "-o", str(snap), map_file]) == 0
        capsys.readouterr()
        assert main(["lookup", str(snap), "nowhere"]) == 1
        assert "no route" in capsys.readouterr().err

    def test_update_incremental(self, tmp_path, capsys):
        old_map = tmp_path / "v1.map"
        old_map.write_text("a b(10), c(100)\nb a(10), c(10)\n"
                           "c b(10), a(100), d(10)\nd c(10)\n")
        new_map = tmp_path / "v2.map"
        new_map.write_text("a b(10), c(100)\nb a(10), c(500)\n"
                           "c b(10), a(100), d(10)\nd c(10)\n")
        old = tmp_path / "v1.snap"
        new = tmp_path / "v2.snap"
        assert main(["snapshot", "-o", str(old), str(old_map)]) == 0
        assert main(["update", str(old), "-o", str(new),
                     str(new_map)]) == 0
        err = capsys.readouterr().err
        assert "incremental update" in err
        fresh = tmp_path / "fresh.snap"
        assert main(["snapshot", "-o", str(fresh), str(new_map)]) == 0
        assert new.read_bytes() == fresh.read_bytes()

    def test_update_missing_snapshot(self, map_file, tmp_path, capsys):
        assert main(["update", str(tmp_path / "no.snap"),
                     "-o", str(tmp_path / "out.snap"), map_file]) == 1
        assert "cannot open snapshot" in capsys.readouterr().err

    def test_snapshot_bad_map(self, tmp_path, capsys):
        bad = tmp_path / "d.map"
        bad.write_text("= broken =")
        assert main(["snapshot", "-o", str(tmp_path / "x.snap"),
                     str(bad)]) == 1
        assert "pathalias:" in capsys.readouterr().err

    def test_serve_help_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--help"])
        assert exc.value.code == 0
        assert "lookup daemon" in capsys.readouterr().out

    def test_snapshot_format_flag(self, map_file, tmp_path, capsys):
        from repro.service.store import SnapshotReader

        v1 = tmp_path / "v1.snap"
        v2 = tmp_path / "v2.snap"
        assert main(["snapshot", "-o", str(v1), "--format", "1",
                     map_file]) == 0
        assert main(["snapshot", "-o", str(v2), map_file]) == 0
        err = capsys.readouterr().err
        assert "format v1" in err and "format v2" in err
        assert SnapshotReader.open(v1).version == 1
        assert SnapshotReader.open(v2).version == 2
        # the v1 compat shim serves lookups identically
        capsys.readouterr()
        assert main(["lookup", str(v1), "phs", "honey",
                     "-l", "unc"]) == 0
        assert main(["lookup", str(v2), "phs", "honey",
                     "-l", "unc"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == lines[1] == "800\tphs\tduke!phs!honey"

    def test_snapshot_upgrade(self, map_file, tmp_path, capsys):
        v1 = tmp_path / "v1.snap"
        v2 = tmp_path / "v2.snap"
        up = tmp_path / "up.snap"
        assert main(["snapshot", "-o", str(v1), "--format", "1",
                     map_file]) == 0
        assert main(["snapshot", "-o", str(v2), map_file]) == 0
        assert main(["snapshot", "--upgrade", str(v1),
                     str(up)]) == 0
        assert "upgraded" in capsys.readouterr().err
        # the round trip: upgrade == native v2 build, byte for byte
        assert up.read_bytes() == v2.read_bytes()

    def test_snapshot_upgrade_rejects_extra_args(self, map_file,
                                                 tmp_path, capsys):
        assert main(["snapshot", "--upgrade", "a", "b",
                     "-o", str(tmp_path / "x.snap")]) == 1
        assert "--upgrade" in capsys.readouterr().err

    def test_snapshot_upgrade_rejects_format_1(self, capsys):
        assert main(["snapshot", "--upgrade", "a", "b",
                     "--format", "1"]) == 1
        assert "always writes format v2" in capsys.readouterr().err

    def test_snapshot_upgrade_rejects_build_options(self, capsys):
        assert main(["snapshot", "--upgrade", "a", "b", "-i"]) == 1
        assert "no build options" in capsys.readouterr().err

    def test_snapshot_without_out_fails(self, map_file, capsys):
        assert main(["snapshot", map_file]) == 1
        assert "-o FILE" in capsys.readouterr().err

    def test_update_preserves_v1_format_by_default(self, tmp_path,
                                                   capsys):
        """Without --format, update keeps the old snapshot's format —
        a v1 pipeline keeps its incremental updates instead of being
        silently migrated (and fully remapped) every month."""
        from repro.service.store import SnapshotReader

        old_map = tmp_path / "v1.map"
        old_map.write_text("a b(10), c(100)\nb a(10), c(10)\n"
                           "c b(10), a(100), d(10)\nd c(10)\n")
        new_map = tmp_path / "v2.map"
        new_map.write_text("a b(10), c(100)\nb a(10), c(500)\n"
                           "c b(10), a(100), d(10)\nd c(10)\n")
        old = tmp_path / "old.snap"
        out = tmp_path / "out.snap"
        assert main(["snapshot", "-o", str(old), "--format", "1",
                     str(old_map)]) == 0
        assert main(["update", str(old), "-o", str(out),
                     str(new_map)]) == 0
        err = capsys.readouterr().err
        assert "incremental update" in err
        assert "format v1" in err
        assert SnapshotReader.open(out).version == 1

    def test_update_format_flag_upgrades(self, map_file, tmp_path,
                                         capsys):
        from repro.service.store import SnapshotReader

        v1 = tmp_path / "v1.snap"
        out = tmp_path / "out.snap"
        ref = tmp_path / "ref.snap"
        assert main(["snapshot", "-o", str(v1), "--format", "1",
                     map_file]) == 0
        assert main(["update", str(v1), "-o", str(out), "--format",
                     "2", map_file]) == 0
        err = capsys.readouterr().err
        assert "format change" in err
        assert SnapshotReader.open(out).version == 2
        assert main(["snapshot", "-o", str(ref), map_file]) == 0
        assert out.read_bytes() == ref.read_bytes()

    def test_serve_format_mismatch_fails_fast(self, map_file,
                                              tmp_path, capsys):
        v1 = tmp_path / "v1.snap"
        assert main(["snapshot", "-o", str(v1), "--format", "1",
                     map_file]) == 0
        capsys.readouterr()
        assert main(["serve", str(v1), "--format", "2"]) == 1
        err = capsys.readouterr().err
        assert "format v1" in err and "--format 2" in err

    def test_flat_cli_untouched_by_subcommands(self, map_file, capsys):
        # a file named like a subcommand must still route to the flat
        # parser when preceded by options
        assert main(["-l", "unc", map_file]) == 0
        assert "duke" in capsys.readouterr().out

    def test_update_honours_case_fold_flag(self, tmp_path, capsys):
        """A snapshot built with -i records case folding; a later
        update without -i must parse the revision the same way."""
        v1 = tmp_path / "v1.map"
        v1.write_text("A B(10), C(100)\nB A(10), C(10)\n"
                      "C B(10), A(100), D(10)\nD C(10)\n")
        v2 = tmp_path / "v2.map"
        v2.write_text("A B(10), C(100)\nB A(10), C(500)\n"
                      "C B(10), A(100), D(10)\nD C(10)\n")
        old = tmp_path / "v1.snap"
        new = tmp_path / "v2.snap"
        assert main(["snapshot", "-i", "-o", str(old), str(v1)]) == 0
        assert main(["update", str(old), "-o", str(new),
                     str(v2)]) == 0
        err = capsys.readouterr().err
        assert "incremental update" in err
        fresh = tmp_path / "fresh.snap"
        assert main(["snapshot", "-i", "-o", str(fresh),
                     str(v2)]) == 0
        assert new.read_bytes() == fresh.read_bytes()

    def test_update_i_flag_upgrades_snapshot_header(self, tmp_path,
                                                    capsys):
        """-i on update of an unfolded snapshot must record folding
        in the new header (byte-identical to snapshot -i) so later
        unflagged updates keep parsing folded."""
        v1 = tmp_path / "v1.map"
        v1.write_text("a b(10)\nb a(10)\n")
        v2 = tmp_path / "v2.map"
        v2.write_text("A B(20)\nB A(20)\n")
        old = tmp_path / "v1.snap"
        new = tmp_path / "v2.snap"
        assert main(["snapshot", "-o", str(old), str(v1)]) == 0
        assert main(["update", "-i", str(old), "-o", str(new),
                     str(v2)]) == 0
        fresh = tmp_path / "fresh.snap"
        assert main(["snapshot", "-i", "-o", str(fresh),
                     str(v2)]) == 0
        assert new.read_bytes() == fresh.read_bytes()
        from repro.service.store import SnapshotReader

        assert SnapshotReader.open(new).case_fold

    def test_lookup_empty_snapshot_clean_error(self, tmp_path,
                                               capsys):
        """A snapshot with zero eligible sources fails cleanly, not
        with an IndexError traceback."""
        nets = tmp_path / "nets.map"
        nets.write_text(".edu = {.rutgers}\n")
        snap = tmp_path / "empty.snap"
        assert main(["snapshot", "-o", str(snap), str(nets)]) == 0
        capsys.readouterr()
        assert main(["lookup", str(snap), "a"]) == 1
        assert "no source tables" in capsys.readouterr().err


class TestFederateCommand:
    MAPS = {
        "west": "a\tb(10), gate(100)\nb\ta(10)\n",
        "east": "gate\tz(10)\nz\tgate(10), y(10)\ny\tz(10)\n",
    }

    def _write_maps(self, tmp_path):
        paths = {}
        for name, text in self.MAPS.items():
            path = tmp_path / f"{name}.map"
            path.write_text(text)
            paths[name] = str(path)
        return paths

    def test_federate_builds_shards_and_reports_gateways(
            self, tmp_path, capsys):
        maps = self._write_maps(tmp_path)
        out = tmp_path / "shards"
        assert main(["federate",
                     f"west={maps['west']}", f"east={maps['east']}",
                     "-o", str(out)]) == 0
        err = capsys.readouterr().err
        assert "federate: west: 3 sources" in err
        assert "gateways east<->west: gate" in err
        assert "serve with: pathalias serve --shard" in err
        from repro.service.store import SnapshotReader

        assert SnapshotReader.open(out / "west.snap").source_count == 3
        assert SnapshotReader.open(out / "east.snap").source_count == 3

    def test_federate_rejects_malformed_region(self, tmp_path, capsys):
        assert main(["federate", "westonly", "-o",
                     str(tmp_path / "x")]) == 1
        assert "NAME=MAPFILE" in capsys.readouterr().err

    def test_federate_rejects_duplicate_names(self, tmp_path, capsys):
        maps = self._write_maps(tmp_path)
        assert main(["federate", f"west={maps['west']}",
                     f"west={maps['east']}",
                     "-o", str(tmp_path / "x")]) == 1
        assert "duplicate shard name" in capsys.readouterr().err

    def test_serve_requires_snapshot_or_shards(self, capsys):
        assert main(["serve"]) == 1
        assert "snapshot file or --shard" in capsys.readouterr().err

    def test_serve_rejects_snapshot_plus_shards(self, tmp_path,
                                                capsys):
        assert main(["serve", "some.snap",
                     "--shard", "a=b.snap"]) == 1
        assert "not both" in capsys.readouterr().err

    def test_serve_shard_help_documents_federation(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        out = capsys.readouterr().out
        assert "--shard" in out and "federation" in out

    def test_federate_help_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            main(["federate", "--help"])
        assert "regional map" in capsys.readouterr().out


class TestClusterCommands:
    """The fan-out surfaces: lookup --connect and serve --backend."""

    def test_lookup_connect_matches_snapshot_lookup(self, map_file,
                                                    tmp_path, capsys):
        """`lookup --connect` prints the same line the snapshot-file
        lookup prints — the CI cluster job diffs exactly this."""
        from tests.test_daemon import _ThreadedDaemon

        snap = tmp_path / "routes.snap"
        assert main(["snapshot", "-o", str(snap), map_file]) == 0
        assert main(["lookup", str(snap), "phs", "honey",
                     "-l", "unc"]) == 0
        offline = capsys.readouterr().out
        with _ThreadedDaemon(str(snap)) as daemon:
            assert main(["lookup", "--connect",
                         f"127.0.0.1:{daemon.port}",
                         "phs", "honey", "-l", "unc"]) == 0
            online = capsys.readouterr().out
        assert online == offline == "800\tphs\tduke!phs!honey\n"

    def test_lookup_connect_without_user(self, map_file, tmp_path,
                                         capsys):
        from tests.test_daemon import _ThreadedDaemon

        snap = tmp_path / "routes.snap"
        assert main(["snapshot", "-o", str(snap), map_file]) == 0
        capsys.readouterr()
        with _ThreadedDaemon(str(snap), source="unc") as daemon:
            assert main(["lookup", "--connect",
                         f"127.0.0.1:{daemon.port}", "phs"]) == 0
        assert "duke!phs!%s" in capsys.readouterr().out

    def test_lookup_connect_bad_spec(self, capsys):
        assert main(["lookup", "--connect", "nowhere", "phs"]) == 1
        assert "HOST:PORT" in capsys.readouterr().err

    def test_lookup_needs_snapshot_or_connect(self, capsys):
        assert main(["lookup", "phs"]) == 1
        assert "snapshot file (or --connect" in \
            capsys.readouterr().err

    def test_serve_rejects_shard_backend_name_collision(self, capsys):
        assert main(["serve", "--shard", "a=x.snap",
                     "--backend", "a=127.0.0.1:4311"]) == 1
        assert "both --shard and --backend" in capsys.readouterr().err

    def test_serve_rejects_snapshot_plus_backend(self, capsys):
        assert main(["serve", "some.snap",
                     "--backend", "a=127.0.0.1:4311"]) == 1
        assert "not both" in capsys.readouterr().err

    def test_serve_help_documents_backends(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        out = capsys.readouterr().out
        assert "--backend" in out and "fan out" in out

    def test_federate_help_documents_spawn(self, capsys):
        with pytest.raises(SystemExit):
            main(["federate", "--help"])
        assert "--spawn" in capsys.readouterr().out

    def test_update_full_fallback_says_so_on_stderr(self, tmp_path,
                                                    capsys):
        """A revision the incremental path cannot prove safe reports
        its full-rebuild fallback and the reason on stderr — never a
        silent mode switch."""
        old_map = tmp_path / "v1.map"
        old_map.write_text("a b(10)\nb a(10)\n")
        new_map = tmp_path / "v2.map"
        new_map.write_text("a b(10), c(10)\nb a(10)\nc a(10)\n")
        old = tmp_path / "v1.snap"
        assert main(["snapshot", "-o", str(old), str(old_map)]) == 0
        capsys.readouterr()
        assert main(["update", str(old), "-o",
                     str(tmp_path / "v2.snap"), str(new_map)]) == 0
        err = capsys.readouterr().err
        assert "full update (topology changed)" in err
