"""Differential tests: the compiled engine against the reference.

Correctness here is a graph-reachability property, so the whole proof
obligation is route-for-route equivalence: for every map and every
source, ``CompactMapper``'s route table must be *byte-identical* to
``Mapper``'s — same costs, same routes, same tie-breaks, same
unreachable list — across tree mode, second-best mode, min-hop costs,
and back-link inference.
"""

from __future__ import annotations

import pickle

import pytest

from repro.config import HeuristicConfig
from repro.core.fastmap import (
    CompactMapper,
    build_portable_table,
    compact_route_table,
    map_routes,
)
from repro.core.mapper import Mapper
from repro.core.printer import print_routes
from repro.errors import MappingError
from repro.graph.build import build_graph
from repro.graph.compact import CompactGraph
from repro.netsim.mapgen import MapParams, generate_map
from repro.parser.grammar import parse_text

from tests.conftest import DOMAIN_TREE_MAP, MOTOWN_MAP, PAPER_1981_MAP
from tests.test_sample_maps import FILES as SAMPLE_FILES


def graph_of(text: str):
    return build_graph([("d.map", parse_text(text))])


def graph_of_files(named):
    return build_graph([(name, parse_text(text, name))
                        for name, text in named])


def reference_table(graph, source, heuristics=None, unit_costs=False):
    """Reference run that leaves the graph as it found it."""
    result = Mapper(graph, heuristics, unit_costs=unit_costs).run(source)
    table = print_routes(result)
    for owner, link in result.inferred:
        owner.links.remove(link)
    return table


def assert_identical(graph, sources, heuristics=None, unit_costs=False):
    """The core differential check, byte-for-byte on both layouts."""
    cgraph = CompactGraph.compile(graph)
    for source in sources:
        mapper = CompactMapper(cgraph, heuristics, unit_costs=unit_costs)
        fast = compact_route_table(mapper.run(source))
        ref = reference_table(graph, source, heuristics, unit_costs)
        assert fast.format_paper() == ref.format_paper(), source
        assert fast.format_tab() == ref.format_tab(), source
        assert fast.unreachable == ref.unreachable, source
        assert fast.warnings == ref.warnings, source


class TestPaperMaps:
    def test_paper_1981(self):
        graph = graph_of(PAPER_1981_MAP)
        assert_identical(graph, ["unc", "duke", "phs", "research",
                                 "ucbvax", "mit-ai", "stanford"])

    def test_paper_1981_second_best(self):
        graph = graph_of(PAPER_1981_MAP)
        assert_identical(graph, ["unc", "ucbvax"],
                         HeuristicConfig(second_best=True))

    def test_paper_1981_unit_costs(self):
        graph = graph_of(PAPER_1981_MAP)
        assert_identical(graph, ["unc", "research"], unit_costs=True)

    def test_domain_tree(self):
        graph = graph_of(DOMAIN_TREE_MAP)
        assert_identical(graph, ["local", "blue"])
        assert_identical(graph_of(DOMAIN_TREE_MAP), ["local"],
                         HeuristicConfig(second_best=True))

    def test_motown_problems_graph(self):
        for cfg in (None, HeuristicConfig(second_best=True)):
            graph = graph_of(MOTOWN_MAP)
            assert_identical(graph, ["princeton", "motown"], cfg)


class TestSampleMaps:
    @pytest.fixture(scope="class")
    def named(self):
        return [(p.name, p.read_text()) for p in SAMPLE_FILES]

    def test_all_hosts_tree_mode(self, named):
        graph = graph_of_files(named)
        sources = [n.name for n in graph.nodes
                   if not n.netlike and not n.private]
        assert_identical(graph, sources)

    def test_second_best(self, named):
        graph = graph_of_files(named)
        assert_identical(graph, ["ihnp4", "mcvax", "princeton"],
                         HeuristicConfig(second_best=True))

    def test_unit_costs(self, named):
        graph = graph_of_files(named)
        assert_identical(graph, ["ihnp4", "mcvax"], unit_costs=True)

    def test_back_link_inference_matches(self, named):
        """sleepy is only reachable through an invented back link; the
        overlay must reproduce the reference's graph mutation."""
        graph = graph_of_files(named)
        cgraph = CompactGraph.compile(graph)
        result = CompactMapper(cgraph).run("ihnp4")
        assert result.stats.inferred_links > 0
        assert result.stats.back_link_rounds > 0
        table = compact_route_table(result)
        assert table.route("sleepy") == "allegra!princeton!sleepy!%s"
        # The source graph was never touched.
        assert all(l.kind.value != "inferred"
                   for n in graph.nodes for l in n.links)


class TestGeneratedMaps:
    @pytest.mark.parametrize("params", [
        MapParams.small(seed=1986),
        MapParams.small(seed=2026),
        MapParams.medium(seed=1986),
    ], ids=["small-1986", "small-2026", "medium-1986"])
    def test_tree_mode(self, params):
        generated = generate_map(params)
        graph = graph_of_files(generated.files)
        sources = [generated.localhost] + generated.backbone[-2:] \
            + generated.regional_hosts[:2]
        assert_identical(graph, dict.fromkeys(sources))

    def test_small_second_best_and_back_links(self):
        generated = generate_map(MapParams.small(seed=1986))
        graph = graph_of_files(generated.files)
        assert_identical(graph, [generated.localhost],
                         HeuristicConfig(second_best=True))
        assert_identical(graph, [generated.localhost],
                         HeuristicConfig(back_link_factor=3))
        assert_identical(graph, [generated.localhost],
                         HeuristicConfig(infer_back_links=False))

    def test_small_unit_costs(self):
        generated = generate_map(MapParams.small(seed=1986))
        graph = graph_of_files(generated.files)
        assert_identical(graph, [generated.localhost], unit_costs=True)


class TestResultSemantics:
    def test_costs_and_stats_match(self):
        graph = graph_of(PAPER_1981_MAP)
        cgraph = CompactGraph.compile(graph)
        fast_mapper = CompactMapper(cgraph)
        fast = fast_mapper.run("unc")
        ref_mapper = Mapper(graph)
        ref = ref_mapper.run("unc")
        for node in graph.nodes:
            cid = cgraph.find(node.name)
            assert fast.cost_of(cid) == ref.cost(node)
        assert fast_mapper.stats.pops == ref_mapper.stats.pops
        assert fast_mapper.stats.relaxations == ref_mapper.stats.relaxations
        assert fast_mapper.stats.inserts == ref_mapper.stats.inserts
        assert fast_mapper.stats.decrease_keys == \
            ref_mapper.stats.decrease_keys

    def test_to_map_result_feeds_reference_printer(self):
        graph = graph_of(PAPER_1981_MAP)
        cgraph = CompactGraph.compile(graph)
        materialized = CompactMapper(cgraph).run("unc").to_map_result()
        table = print_routes(materialized)
        ref = reference_table(graph, "unc")
        assert table.format_paper() == ref.format_paper()
        best = materialized.best(graph.require("mit-ai"))
        assert best.parent.node.name == "ARPA"
        assert best.parent.parent.node.name == "ucbvax"

    def test_stop_at_early_exit(self):
        graph = graph_of(PAPER_1981_MAP)
        cgraph = CompactGraph.compile(graph)
        mapper = CompactMapper(cgraph)
        result = mapper.run("unc", stop_at="duke")
        assert result.cost_of("duke") == 500
        assert mapper.stats.pops < cgraph.n

    def test_scratch_reuse_across_runs(self):
        """One mapper, many sources: each run starts clean."""
        graph = graph_of(PAPER_1981_MAP)
        cgraph = CompactGraph.compile(graph)
        mapper = CompactMapper(cgraph)
        first = compact_route_table(mapper.run("unc")).format_paper()
        compact_route_table(mapper.run("ucbvax"))
        again = compact_route_table(mapper.run("unc")).format_paper()
        assert first == again
        assert first == reference_table(graph, "unc").format_paper()

    def test_unknown_source_raises(self):
        cgraph = CompactGraph.compile(graph_of(PAPER_1981_MAP))
        with pytest.raises(MappingError):
            CompactMapper(cgraph).run("zebra")

    def test_map_routes_convenience(self):
        graph = graph_of(PAPER_1981_MAP)
        table = map_routes(CompactGraph.compile(graph), "unc")
        assert table.route("mit-ai") == "duke!research!ucbvax!%s@mit-ai"


class TestPickledWorkerPath:
    def test_detached_graph_round_trip(self):
        graph = graph_of(PAPER_1981_MAP)
        cgraph = pickle.loads(pickle.dumps(CompactGraph.compile(graph)))
        assert cgraph.graph is None
        source, records, unreachable, warnings = build_portable_table(
            CompactMapper(cgraph).run("unc"))
        assert source == "unc"
        ref = reference_table(graph, "unc")
        assert [(c, n, r) for c, n, r, _cid in records] == \
            [(r.cost, r.name, r.route) for r in
             sorted(ref, key=lambda r: (r.cost, r.name))]
        assert unreachable == ref.unreachable

    def test_detached_materialization_refused(self):
        cgraph = pickle.loads(pickle.dumps(
            CompactGraph.compile(graph_of(PAPER_1981_MAP))))
        with pytest.raises(MappingError):
            CompactMapper(cgraph).run("unc").to_map_result()
