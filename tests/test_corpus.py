"""Data-driven tests over the address corpus."""

import pytest

from repro.errors import AddressError
from repro.mailer.address import MailerStyle, next_hop
from repro.mailer.corpus import CORPUS, divergent_specimens, specimens_for


def _check(address: str, style: MailerStyle, expectation):
    if expectation == "error":
        with pytest.raises(AddressError):
            next_hop(address, style)
    else:
        assert next_hop(address, style) == tuple(expectation)


@pytest.mark.parametrize(
    "address,expectation",
    specimens_for(MailerStyle.BANG_RIGID),
    ids=[s.address for s in CORPUS])
def test_bang_rigid(address, expectation):
    _check(address, MailerStyle.BANG_RIGID, expectation)


@pytest.mark.parametrize(
    "address,expectation",
    specimens_for(MailerStyle.RFC822_RIGID),
    ids=[s.address for s in CORPUS])
def test_rfc822_rigid(address, expectation):
    _check(address, MailerStyle.RFC822_RIGID, expectation)


@pytest.mark.parametrize(
    "address,expectation",
    specimens_for(MailerStyle.HEURISTIC),
    ids=[s.address for s in CORPUS])
def test_heuristic(address, expectation):
    _check(address, MailerStyle.HEURISTIC, expectation)


class TestCorpusShape:
    def test_divergence_is_common(self):
        """The paper's premise: the styles really do disagree often."""
        assert len(divergent_specimens()) >= 10

    def test_pure_forms_agree_between_heuristic_and_native(self):
        """On pure bang paths the heuristic matches bang-rigid; on pure
        RFC822 it matches rfc822-rigid — it only arbitrates mixes."""
        for specimen in CORPUS:
            address = specimen.address
            if "@" not in address and "%" not in address \
                    and specimen.bang != "error":
                assert specimen.heuristic == specimen.bang, address
            if "!" not in address and specimen.rfc822 != "error":
                assert specimen.heuristic == specimen.rfc822, address

    def test_every_specimen_has_note(self):
        for specimen in CORPUS:
            assert specimen.note
