"""Unit tests for cost-expression evaluation (paper's cost table)."""

import pytest

from repro.config import COST_SYMBOLS, DEAD
from repro.errors import CostExpressionError
from repro.parser.costexpr import evaluate_cost


class TestPaperTable:
    """The cost table from the INPUT section, verbatim."""

    @pytest.mark.parametrize("symbol,value", [
        ("LOCAL", 25),
        ("DEDICATED", 95),
        ("DIRECT", 200),
        ("DEMAND", 300),
        ("HOURLY", 500),
        ("EVENING", 1800),
        ("POLLED", 5000),
        ("DAILY", 5000),
        ("WEEKLY", 30000),
    ])
    def test_symbol_values(self, symbol, value):
        assert evaluate_cost(symbol) == value
        assert COST_SYMBOLS[symbol] == value

    def test_daily_is_ten_times_hourly(self):
        """'DAILY is 10 times greater than HOURLY, instead of 24' — the
        per-hop overhead argument."""
        assert evaluate_cost("DAILY") == 10 * evaluate_cost("HOURLY")

    def test_dead_extension(self):
        assert evaluate_cost("DEAD") == DEAD


class TestArithmetic:
    def test_paper_examples(self):
        assert evaluate_cost("HOURLY*3") == 1500
        assert evaluate_cost("DAILY/2") == 2500

    def test_precedence(self):
        assert evaluate_cost("1+2*3") == 7
        assert evaluate_cost("(1+2)*3") == 9

    def test_c_style_truncation(self):
        assert evaluate_cost("7/2") == 3
        assert evaluate_cost("-7/2") == -3  # toward zero, like C

    def test_unary_minus(self):
        assert evaluate_cost("-5") == -5
        assert evaluate_cost("10--5") == 15

    def test_mixed_symbols_and_numbers(self):
        assert evaluate_cost("HOURLY+25") == 525
        assert evaluate_cost("DEMAND*2-100") == 500

    def test_high_low_adjustments(self):
        assert evaluate_cost("DEMAND+LOW") == 305
        assert evaluate_cost("DEMAND+HIGH") == 295

    def test_nested_parens(self):
        assert evaluate_cost("((2))") == 2
        assert evaluate_cost("2*(3+(4*5))") == 46


class TestErrors:
    def test_unknown_symbol(self):
        with pytest.raises(CostExpressionError):
            evaluate_cost("FORTNIGHTLY")

    def test_division_by_zero(self):
        with pytest.raises(CostExpressionError):
            evaluate_cost("5/0")

    def test_trailing_junk(self):
        with pytest.raises(CostExpressionError):
            evaluate_cost("5 5")

    def test_dangling_operator(self):
        with pytest.raises(CostExpressionError):
            evaluate_cost("5+")

    def test_custom_symbol_table(self):
        assert evaluate_cost("X*2", symbols={"X": 21}) == 42
        with pytest.raises(CostExpressionError):
            evaluate_cost("HOURLY", symbols={"X": 21})
