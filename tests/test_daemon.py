"""The lookup daemon: protocol, hot-swap under load, sync client."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.pathalias import Pathalias
from repro.errors import RouteError
from repro.mailer.router import MailRouter
from repro.service.daemon import (
    DaemonRouteDatabase,
    RouteService,
    serve,
)
from repro.service.store import SnapshotError, build_snapshot

MAP_V1 = """\
a\tb(10), c(100)
b\ta(10), c(10)
c\tb(10), a(100), d(10)
d\tc(10)
"""

#: same topology, pricier bridge: a's route to c and d changes.
MAP_V2 = MAP_V1.replace("b\ta(10), c(10)", "b\ta(10), c(500)")


def make_snapshot(text, path):
    build_snapshot(Pathalias().build([("d.map", text)]), path)
    return str(path)


@pytest.fixture()
def snapshots(tmp_path):
    return (make_snapshot(MAP_V1, tmp_path / "v1.snap"),
            make_snapshot(MAP_V2, tmp_path / "v2.snap"))


async def request(reader, writer, line: str) -> str:
    writer.write(line.encode() + b"\n")
    await writer.drain()
    return (await reader.readline()).decode().rstrip("\n")


class TestProtocol:
    def test_commands(self, snapshots):
        snap1, _ = snapshots

        async def scenario():
            service = RouteService(snap1, default_source="a")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            assert await request(r, w, "ROUTE d user") == \
                "OK 30 d b!c!d!%s b!c!d!user"
            assert await request(r, w, "ROUTE d") == \
                "OK 30 d b!c!d!%s b!c!d!%s"
            assert await request(r, w, "EXACT b") == "OK 10 b b!%s"
            assert (await request(r, w, "ROUTE nowhere")) == \
                "ERR noroute nowhere"
            assert (await request(r, w, "EXACT nowhere")) == \
                "ERR noroute nowhere"
            assert await request(r, w, "SOURCE d") == "OK source d"
            assert await request(r, w, "ROUTE a who") == \
                "OK 30 a c!b!a!%s c!b!a!who"
            assert (await request(r, w, "SOURCE ghost")).startswith(
                "ERR unknown-source")
            assert (await request(r, w, "BOGUS")).startswith(
                "ERR unknown-command")
            assert (await request(r, w, "ROUTE")).startswith(
                "ERR usage")
            stats = await request(r, w, "STATS")
            assert stats.startswith("OK lookups=")
            assert "sources=4" in stats
            assert "format=2" in stats
            assert await request(r, w, "QUIT") == "OK bye"
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_reload_swaps_routes(self, snapshots):
        snap1, snap2 = snapshots

        async def scenario():
            service = RouteService(snap1, default_source="a")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            assert await request(r, w, "ROUTE d u") == \
                "OK 30 d b!c!d!%s b!c!d!u"
            reply = await request(r, w, f"RELOAD {snap2}")
            assert reply.startswith("OK reloaded 4 ")
            # v2's bridge costs 500: a now reaches d via the direct
            # a->c link.
            assert await request(r, w, "ROUTE d u") == \
                "OK 110 d c!d!%s c!d!u"
            bad = await request(r, w, "RELOAD /no/such/file.snap")
            assert bad.startswith("ERR reload")
            # the failed reload left the current snapshot serving
            assert await request(r, w, "ROUTE d u") == \
                "OK 110 d c!d!%s c!d!u"
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_unknown_source_at_start_rejected(self, snapshots):
        snap1, _ = snapshots
        with pytest.raises(SnapshotError, match="no table"):
            RouteService(snap1, default_source="ghost")

    def test_stats_format_and_verb_counters(self, snapshots,
                                            tmp_path):
        """STATS reports the served snapshot's format version (which
        flips when RELOAD swaps formats) and per-verb counters that a
        RELOAD must never reset."""
        snap1, _ = snapshots
        v1 = tmp_path / "fmt1.snap"
        build_snapshot(Pathalias().build([("d.map", MAP_V1)]), v1,
                       fmt=1)

        def parse(reply):
            return dict(token.partition("=")[::2]
                        for token in reply[3:].split())

        async def scenario():
            service = RouteService(snap1, default_source="a")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            assert (await request(r, w, "ROUTE d u")).startswith("OK")
            assert (await request(r, w, "EXACT b")).startswith("OK")
            stats = parse(await request(r, w, "STATS"))
            assert stats["format"] == "2"
            assert stats["n_route"] == "1"
            assert stats["n_exact"] == "1"
            assert stats["n_stats"] == "1"
            assert stats["n_reload"] == "0"
            reply = await request(r, w, f"RELOAD {v1}")
            assert reply.startswith("OK reloaded")
            stats = parse(await request(r, w, "STATS"))
            # the reload swapped in a v1 file and reset NO counters
            assert stats["format"] == "1"
            assert stats["n_route"] == "1"
            assert stats["n_exact"] == "1"
            assert stats["n_reload"] == "1"
            assert stats["n_stats"] == "2"
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_pinned_format_enforced_on_reload(self, snapshots,
                                              tmp_path):
        """A --format pin is a standing contract: the startup check
        and every later RELOAD enforce it, so the daemon can never be
        silently downgraded mid-flight."""
        snap1, snap2 = snapshots
        v1 = tmp_path / "fmt1.snap"
        build_snapshot(Pathalias().build([("d.map", MAP_V1)]), v1,
                       fmt=1)
        with pytest.raises(SnapshotError, match="--format 2"):
            RouteService(str(v1), default_source="a",
                         require_format=2)

        async def scenario():
            service = RouteService(snap1, default_source="a",
                                   require_format=2)
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            reply = await request(r, w, f"RELOAD {v1}")
            assert reply.startswith("ERR reload")
            assert "--format 2" in reply
            # the refused reload left the pinned snapshot serving
            assert (await request(r, w, "ROUTE d u")).startswith(
                "OK 30 d")
            assert (await request(r, w,
                                  f"RELOAD {snap2}")).startswith(
                "OK reloaded")
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_stale_source_after_reload_survives(self, snapshots,
                                                tmp_path):
        """A RELOAD can replace the snapshot with one that lacks a
        connection's chosen source; the next lookup must answer ERR
        and leave the connection (and daemon) alive."""
        snap1, _ = snapshots
        other = make_snapshot("x\ty(10)\ny\tx(10)\n",
                              tmp_path / "other.snap")

        async def scenario():
            service = RouteService(snap1, default_source="a")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            assert await request(r, w, "SOURCE d") == "OK source d"
            reply = await request(r, w, f"RELOAD {other}")
            assert reply.startswith("OK reloaded 2 ")
            assert await request(r, w, "ROUTE a u") == \
                "ERR unknown-source d"
            assert await request(r, w, "EXACT a") == \
                "ERR unknown-source d"
            # the connection is still serviceable
            assert await request(r, w, "SOURCE x") == "OK source x"
            assert await request(r, w, "ROUTE y u") == \
                "OK 10 y y!%s y!u"
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())


class TestMalformedLines:
    def test_garbage_between_valid_requests(self, snapshots):
        """Non-UTF-8 bytes and over-long junk interleaved with valid
        requests: each bad line errors exactly one request (counted in
        n_errors), the connection survives, and the verb counters are
        not skewed."""
        snap1, _ = snapshots

        async def scenario():
            service = RouteService(snap1, default_source="a")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)

            assert await request(r, w, "ROUTE d u") == \
                "OK 30 d b!c!d!%s b!c!d!u"
            # garbage bytes that are not valid UTF-8
            w.write(b"\xff\xfe\x80 garbage \xff\n")
            await w.drain()
            assert (await r.readline()) == \
                b"ERR encoding expected UTF-8\n"
            # the same connection keeps answering
            assert await request(r, w, "ROUTE d u") == \
                "OK 30 d b!c!d!%s b!c!d!u"
            # a line longer than the 64 KiB stream frame limit used to
            # tear the whole connection down (uncaught ValueError from
            # readline); now the whole oversized line is discarded
            # through its newline and answered with EXACTLY ONE ERR —
            # a request/reply-lockstep client stays frame-aligned.
            # The sentinel request after it proves the ordering.
            for junk_len in (70000, 200000):
                w.write(b"R" * junk_len + b"\n")
                w.write(b"EXACT b\n")
                await w.drain()
                reply = await r.readline()
                assert reply.startswith(b"ERR overflow"), reply
                assert (await r.readline()) == b"OK 10 b b!%s\n"
            # still serviceable, and the counters stayed truthful:
            # exactly 3 ROUTE requests were ever dispatched, junk
            # lines skewing nothing
            assert await request(r, w, "ROUTE d u") == \
                "OK 30 d b!c!d!%s b!c!d!u"
            assert service.verb_counts["ROUTE"] == 3
            assert service.errors >= 2  # encoding + overflow junk
            stats = service.stats_line()
            assert f"n_errors={service.errors}" in stats
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_err_replies_counted(self, snapshots):
        """Protocol-level ERRs (misses, bad verbs) count in n_errors
        and survive RELOAD like every service-owned counter."""
        snap1, snap2 = snapshots

        async def scenario():
            service = RouteService(snap1, default_source="a")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            assert (await request(r, w, "ROUTE nowhere")).startswith(
                "ERR noroute")
            assert (await request(r, w, "BOGUS")).startswith(
                "ERR unknown-command")
            assert service.errors == 2
            assert (await request(r, w,
                                  f"RELOAD {snap2}")).startswith("OK")
            stats = await request(r, w, "STATS")
            assert "n_errors=2" in stats
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())


class TestResultCacheOverWire:
    """The generation-stamped result cache as the daemon serves it:
    STATS keys, RELOAD invalidation ordering, the dict-oracle pin."""

    def test_stats_survive_reload_and_answers_stay_fresh(
            self, snapshots):
        """Cache counters are service-owned (they survive RELOAD like
        every other counter), the RELOAD bumps the generation before
        acking, and the very next ROUTE serves the new snapshot —
        never a pre-swap cache entry."""
        snap1, snap2 = snapshots

        async def scenario():
            service = RouteService(snap1, default_source="a")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            assert await request(r, w, "ROUTE d u") == \
                "OK 30 d b!c!d!%s b!c!d!u"  # miss, filled
            assert await request(r, w, "ROUTE d other") == \
                "OK 30 d b!c!d!%s b!c!d!other"  # hit, re-addressed
            assert await request(r, w, "EXACT b") == "OK 10 b b!%s"
            assert await request(r, w, "EXACT b") == "OK 10 b b!%s"
            stats = await request(r, w, "STATS")
            assert "cache=4096" in stats
            assert "n_cache_hits=2" in stats
            assert "n_cache_misses=2" in stats
            assert "n_cache_invalidations=0" in stats
            # RELOAD bumps before it acks: the reply IS the fence
            assert (await request(r, w,
                                  f"RELOAD {snap2}")).startswith("OK")
            assert await request(r, w, "ROUTE d u") == \
                "OK 110 d c!d!%s c!d!u"
            stats = await request(r, w, "STATS")
            assert "n_cache_hits=2" in stats  # survived the swap
            assert "n_cache_invalidations=1" in stats
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_cached_errors_replay_the_same_wire_code(self, snapshots):
        snap1, _ = snapshots

        async def scenario():
            service = RouteService(snap1, default_source="a")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            first = await request(r, w, "ROUTE nowhere u")
            assert first == "ERR noroute nowhere"
            assert await request(r, w, "ROUTE nowhere v") == first
            assert service.cache.hits == 1
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_dict_dispatch_pins_the_cache_off(self, snapshots):
        """dispatch="dict" is the differential oracle; it must answer
        from the snapshot walk every time, and say so in STATS."""
        snap1, _ = snapshots

        async def scenario():
            service = RouteService(snap1, default_source="a",
                                   dispatch="dict")
            assert service.cache is None
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            assert await request(r, w, "ROUTE d u") == \
                "OK 30 d b!c!d!%s b!c!d!u"
            stats = await request(r, w, "STATS")
            assert "cache=0" in stats
            assert "n_cache_hits=0" in stats
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_explicit_cache_size_reported(self, snapshots):
        snap1, _ = snapshots

        async def scenario():
            service = RouteService(snap1, default_source="a",
                                   cache_size=7)
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            assert "cache=7" in await request(r, w, "STATS")
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())


class TestHotSwapUnderLoad:
    def test_no_request_dropped_during_reload(self, snapshots):
        """The acceptance bar: clients hammer ROUTE while another
        connection hot-swaps snapshots back and forth; every single
        request gets a well-formed OK answer."""
        snap1, snap2 = snapshots
        requests_per_client = 40
        clients = 6
        reloads = 10

        async def scenario():
            service = RouteService(snap1, default_source="a")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]

            async def client(i):
                r, w = await asyncio.open_connection("127.0.0.1", port)
                answered = 0
                for k in range(requests_per_client):
                    reply = await request(r, w, f"ROUTE d u{i}.{k}")
                    # Both snapshots route a->d; whichever snapshot
                    # serves the request, the answer is complete and
                    # well-formed.
                    assert reply in (
                        f"OK 30 d b!c!d!%s b!c!d!u{i}.{k}",
                        f"OK 110 d c!d!%s c!d!u{i}.{k}")
                    answered += 1
                    await asyncio.sleep(0)
                w.close()
                return answered

            async def reloader():
                r, w = await asyncio.open_connection("127.0.0.1", port)
                for k in range(reloads):
                    target = snap2 if k % 2 == 0 else snap1
                    reply = await request(r, w, f"RELOAD {target}")
                    assert reply.startswith("OK reloaded")
                    await asyncio.sleep(0)
                w.close()
                return reloads

            results = await asyncio.gather(
                *(client(i) for i in range(clients)), reloader())
            # The reload-under-load counter bar: every ROUTE and every
            # RELOAD that was answered is still counted — a hot swap
            # must never reset the service's counters mid-traffic.
            assert service.verb_counts["ROUTE"] == \
                clients * requests_per_client
            assert service.verb_counts["RELOAD"] == reloads
            assert service.lookups == clients * requests_per_client
            stats = service.stats_line()
            assert f"n_route={clients * requests_per_client}" in stats
            assert f"n_reload={reloads}" in stats
            # the compiled-dispatch counters ride the same bar: the
            # default mode is fsm, and with the result cache on a hot
            # pair's repeats answer from the cache — dispatches plus
            # cache hits must still account for every lookup, and ten
            # hot swaps reset none of the counters
            assert "dispatch=fsm" in stats
            total = clients * requests_per_client
            assert service.fsm_hits + service.cache.hits == total
            assert service.fsm_hits >= 1  # at least the first walk
            assert "n_fsm_misses=0" in stats
            # every RELOAD bumped the cache generation exactly once
            assert f"n_cache_invalidations={reloads}" in stats
            server.close()
            await server.wait_closed()
            return results

        results = asyncio.run(scenario())
        assert results == [requests_per_client] * clients + [reloads]


class TestFederatedHotSwapUnderLoad:
    def test_shard_reload_drops_no_federated_requests(self, tmp_path):
        """The federated acceptance bar: clients hammer cross-shard
        ROUTEs while another connection hot-swaps ONE shard back and
        forth; every request gets a well-formed OK, and the answers
        only ever come from one shard generation or the other."""
        from repro.service.federation import FederationService

        left = make_snapshot(
            "a\tb(10), gate(100)\nb\ta(10)\ngate\ta(100)\n",
            tmp_path / "left.snap")
        right_v1 = make_snapshot(
            "gate\tz(10)\nz\tgate(10), y(10)\ny\tz(10)\n",
            tmp_path / "right1.snap")
        right_v2 = make_snapshot(
            "gate\tz(500)\nz\tgate(500), y(10)\ny\tz(10)\n",
            tmp_path / "right2.snap")
        requests_per_client = 40
        clients = 6
        reloads = 10

        async def scenario():
            service = FederationService(
                {"left": left, "right": right_v1},
                default_source="a")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]

            async def client(i):
                r, w = await asyncio.open_connection("127.0.0.1", port)
                answered = 0
                for k in range(requests_per_client):
                    reply = await request(r, w, f"ROUTE y u{i}.{k}")
                    # a -> gate (left shard) stitched with gate -> y
                    # (right shard); both right generations route it.
                    assert reply in (
                        f"OK 120 y gate!z!y!%s gate!z!y!u{i}.{k}",
                        f"OK 610 y gate!z!y!%s gate!z!y!u{i}.{k}")
                    answered += 1
                    await asyncio.sleep(0)
                w.close()
                return answered

            async def reloader():
                r, w = await asyncio.open_connection("127.0.0.1", port)
                for k in range(reloads):
                    target = right_v2 if k % 2 == 0 else right_v1
                    reply = await request(r, w,
                                          f"RELOAD right {target}")
                    assert reply.startswith("OK reloaded right")
                    await asyncio.sleep(0)
                w.close()
                return reloads

            results = await asyncio.gather(
                *(client(i) for i in range(clients)), reloader())
            # the front end dispatches through the compiled automaton
            # by default; with the result cache on, hot-pair repeats
            # answer from the cache, so dispatches plus cache hits
            # account for every lookup — and per-shard hot swaps must
            # not reset the fsm counters any more than the others
            stats = service.stats_line()
            assert "dispatch=fsm" in stats
            total = clients * requests_per_client
            assert service.fsm_hits + service.cache.hits == total
            assert service.fsm_hits >= 1
            assert "n_fsm_misses=0" in stats
            # every per-shard RELOAD bumped the cache generation
            assert service.cache.invalidations == reloads
            server.close()
            await server.wait_closed()
            return results

        results = asyncio.run(scenario())
        assert results == [requests_per_client] * clients + [reloads]

    def test_attach_detach_churn_never_shows_half_swapped_view(
            self, tmp_path):
        """The swap-path audit bar: clients hammer ROUTEs whose
        answers cross a *stable* pair of shards while a third shard is
        attached and detached in a tight loop.  Every request must see
        a complete picture — either with the churned shard or without
        it, never a mixture — and the service counters must add up."""
        from repro.service.federation import FederationService

        left = make_snapshot(
            "a\tb(10), gate(100)\nb\ta(10)\ngate\ta(100)\n",
            tmp_path / "left.snap")
        right = make_snapshot(
            "gate\tz(10)\nz\tgate(10), y(10)\ny\tz(10)\n",
            tmp_path / "right.snap")
        # the churned shard owns host q, reachable only through it
        extra = make_snapshot(
            "z\tq(25)\nq\tz(25)\n", tmp_path / "extra.snap")
        requests_per_client = 40
        clients = 5
        churns = 12

        async def scenario():
            service = FederationService(
                {"left": left, "right": right},
                default_source="a")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]

            async def client(i):
                r, w = await asyncio.open_connection("127.0.0.1", port)
                answered = 0
                for k in range(requests_per_client):
                    # a -> y stitches left -> right regardless of the
                    # churned shard; its answer must never change
                    reply = await request(r, w, f"ROUTE y u{i}.{k}")
                    assert reply == (f"OK 120 y gate!z!y!%s "
                                     f"gate!z!y!u{i}.{k}"), reply
                    # a -> q exists exactly when the extra shard is
                    # attached: OK through it, or a clean noroute —
                    # anything else is a torn picture
                    reply = await request(r, w, f"ROUTE q u{i}.{k}")
                    assert reply in (
                        f"OK 135 q gate!z!q!%s gate!z!q!u{i}.{k}",
                        "ERR noroute q"), reply
                    answered += 1
                    await asyncio.sleep(0)
                w.close()
                return answered

            async def churner():
                r, w = await asyncio.open_connection("127.0.0.1", port)
                for k in range(churns):
                    reply = await request(r, w,
                                          f"ATTACH extra {extra}")
                    assert reply.startswith("OK attached extra"), reply
                    await asyncio.sleep(0)
                    reply = await request(r, w, "DETACH extra")
                    assert reply == "OK detached extra", reply
                    await asyncio.sleep(0)
                w.close()
                return churns

            results = await asyncio.gather(
                *(client(i) for i in range(clients)), churner())
            assert service.attaches == churns
            assert service.detaches == churns
            assert service.verb_counts["ROUTE"] == \
                2 * clients * requests_per_client
            stats = service.stats_line()
            assert "shards=2" in stats  # churn always ended detached
            server.close()
            await server.wait_closed()
            return results

        results = asyncio.run(scenario())
        assert results == [requests_per_client] * clients + [churns]


class _ThreadedDaemon:
    """Run the asyncio server in a thread so synchronous clients
    (DaemonRouteDatabase, MailRouter) can talk to it from the test.

    Subclasses override ``_make_service`` to serve a different
    LineService (the federation tests reuse this harness).
    """

    def __init__(self, snapshot_path, source: str | None = None,
                 port: int = 0):
        self.snapshot_path = snapshot_path
        self.source = source
        self.port: int | None = None
        self._bind_port = port
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _make_service(self):
        return RouteService(self.snapshot_path,
                            default_source=self.source)

    def _run(self):
        async def amain():
            service = self._make_service()
            server = await serve(service, port=self._bind_port)
            self.port = server.sockets[0].getsockname()[1]
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            server.close()
            await server.wait_closed()

        asyncio.run(amain())

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "daemon failed to start"
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10)


class TestClientSurvivesDaemonBounce:
    """The stale-pooled-socket bar: a daemon restart between two
    calls must be invisible to the synchronous clients."""

    def test_daemon_client_retries_stale_socket(self, snapshots):
        snap1, _ = snapshots
        with _ThreadedDaemon(snap1, source="a") as first:
            port = first.port
            db = DaemonRouteDatabase(("127.0.0.1", port), source="a")
            assert db.route("d") == "b!c!d!%s"
            # full daemon restart on the same port: the pooled socket
            # is now stale
        with _ThreadedDaemon(snap1, source="a", port=port):
            assert db.route("d") == "b!c!d!%s"
            res = db.resolve("d", "user")
            assert res.address == "b!c!d!user"
        db.close()

    def test_client_waits_out_a_short_restart_window(self, snapshots):
        """The reconnect is patient: a lookup issued while the daemon
        is briefly down succeeds once it comes back (within the
        client's reconnect patience)."""
        snap1, _ = snapshots
        with _ThreadedDaemon(snap1, source="a") as first:
            port = first.port
            db = DaemonRouteDatabase(("127.0.0.1", port), source="a")
            assert db.route("d") == "b!c!d!%s"
        # daemon is down now; restart it after a short delay while the
        # client call below is already retrying
        restarter = _ThreadedDaemon(snap1, source="a", port=port)

        def come_back():
            import time as _time

            _time.sleep(0.3)
            restarter.__enter__()

        thread = threading.Thread(target=come_back)
        thread.start()
        try:
            assert db.route("d") == "b!c!d!%s"
        finally:
            thread.join(10)
            restarter.__exit__()
            db.close()

    def test_first_connect_to_dead_address_fails_fast(self):
        """Patience is for *re*-connects only: a wrong address on the
        very first call errors immediately, not after a retry window."""
        import time as _time

        db = DaemonRouteDatabase(("127.0.0.1", 1), timeout=5.0)
        t0 = _time.monotonic()
        with pytest.raises(OSError):
            db.route("d")
        assert _time.monotonic() - t0 < 1.0

    def test_federated_client_retries_stale_socket(self, tmp_path):
        """The federated client inherits the same transparent retry."""
        from repro.service.federation import (
            FederatedRouteDatabase,
            FederationService,
        )

        snap = make_snapshot(MAP_V1, tmp_path / "one.snap")

        class _FederatedDaemon(_ThreadedDaemon):
            def _make_service(self):
                return FederationService({"one": self.snapshot_path},
                                         default_source=self.source)

        with _FederatedDaemon(snap, source="a") as first:
            port = first.port
            db = FederatedRouteDatabase(("127.0.0.1", port))
            assert db.route("d") == "b!c!d!%s"
        with _FederatedDaemon(snap, source="a", port=port):
            assert db.route("d") == "b!c!d!%s"
            assert set(db.shards()) == {"one"}
        db.close()


class TestSyncClient:
    def test_route_database_interface(self, snapshots):
        snap1, snap2 = snapshots
        with _ThreadedDaemon(snap1, source="a") as daemon:
            with DaemonRouteDatabase(("127.0.0.1", daemon.port)) as db:
                assert db.route("d") == "b!c!d!%s"
                assert db.route("ghost") is None
                assert "d" in db
                assert "ghost" not in db
                res = db.resolve("d", "user")
                assert res.address == "b!c!d!user"
                assert res.matched == "d"
                assert db.resolve_bang("d!user").address == "b!c!d!user"
                with pytest.raises(RouteError):
                    db.resolve("ghost", "user")
                stats = db.stats()
                assert stats["sources"] == "4"
                assert db.reload(snap2) == 4
                assert db.route("d") == "c!d!%s"

    def test_source_binding(self, snapshots):
        snap1, _ = snapshots
        with _ThreadedDaemon(snap1) as daemon:
            with DaemonRouteDatabase(("127.0.0.1", daemon.port),
                                     source="d") as db:
                assert db.route("a") == "c!b!a!%s"

    def test_rejects_spaces_in_tokens(self, snapshots):
        snap1, _ = snapshots
        with _ThreadedDaemon(snap1) as daemon:
            with DaemonRouteDatabase(("127.0.0.1", daemon.port)) as db:
                with pytest.raises(RouteError, match="protocol"):
                    db.resolve("d", "two words")

    def test_mail_router_through_daemon(self, snapshots):
        """MailRouter end to end against a live daemon instead of an
        in-memory table."""
        snap1, _ = snapshots
        with _ThreadedDaemon(snap1) as daemon:
            router = MailRouter.connected(
                "a", ("127.0.0.1", daemon.port))
            envelope = router.route("user@d", sender="postmaster")
            assert envelope.transport_address == "b!c!d!user"
            assert router.resolve("d", "user").address == "b!c!d!user"
            # explicitly routed mail goes through the optimizer, whose
            # database queries also hit the daemon
            envelope = router.route("c!d!user")
            assert envelope.transport_address == "b!c!d!user"
            router.db.close()
