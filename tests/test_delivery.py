"""Delivery-simulation tests: do generated routes get the mail through?"""

from repro import HeuristicConfig, Pathalias
from repro.graph.build import build_graph
from repro.mailer.address import MailerStyle
from repro.mailer.delivery import Network
from repro.parser.grammar import parse_text

from tests.conftest import PAPER_1981_MAP


def network(text: str, styles=None, default=MailerStyle.BANG_RIGID):
    graph = build_graph([("d.map", parse_text(text))])
    return Network(graph, styles=styles, default_style=default)


class TestConnectivity:
    def test_direct_link(self):
        net = network("a b(10)\nb a(10)")
        assert net.can_send("a", "b")

    def test_no_link(self):
        net = network("a b(10)\nc d(10)")
        assert not net.can_send("a", "c")

    def test_clique_members_all_talk(self):
        net = network("NET = {x, y, z}(10)")
        assert net.can_send("x", "y")
        assert net.can_send("z", "x")

    def test_gateway_reaches_members(self):
        net = network("gw NET(5)\nNET = {x, y}(10)")
        assert net.can_send("gw", "x")

    def test_alias_adjacency(self):
        net = network("a b(10)\nb = bee")
        assert net.can_send("a", "b")

    def test_domain_qualified_name_resolves(self):
        net = network("seismo .edu(95)\n.edu = {.rutgers}\n"
                      ".rutgers = {caip}")
        assert net.resolve_name("caip.rutgers.edu") == "caip"
        assert net.resolve_name("caip") == "caip"


class TestDelivery:
    def test_paper_route_delivers(self):
        """The flagship check: the 1981 output actually works, given
        RFC822 capability at the ARPANET boundary."""
        table = Pathalias().run_text(PAPER_1981_MAP, localhost="unc")
        net = network(PAPER_1981_MAP,
                      styles={"ucbvax": MailerStyle.HEURISTIC})
        report = net.deliver_route("unc", table.route("mit-ai"),
                                   user="minsky")
        assert report.delivered, report.failure
        assert report.final_host == "mit-ai"
        assert report.user == "minsky"
        assert report.hops == ["duke", "research", "ucbvax", "mit-ai"]

    def test_all_paper_routes_deliver(self):
        table = Pathalias().run_text(PAPER_1981_MAP, localhost="unc")
        net = network(PAPER_1981_MAP,
                      styles={"ucbvax": MailerStyle.HEURISTIC})
        for record in table:
            report = net.deliver_route("unc", record.route)
            assert report.delivered, (record.name, report.failure)

    def test_rigid_relay_kills_at_then_bang(self):
        """The ambiguous direction: user@b routed through a bang-rigid
        host fails — what the mixed-syntax penalty protects against."""
        net = network("a c(10)\nc b(10)\nb c(10)")
        report = net.deliver("a", "c!user@b")
        # a (bang-rigid) forwards to c; at c the remainder user@b is
        # treated as a local user — silently misdelivered at c.
        assert report.final_host == "c"
        assert report.user == "user@b"

    def test_unknown_next_host_fails(self):
        net = network("a b(10)")
        report = net.deliver("a", "zebra!user")
        assert not report.delivered
        assert "zebra" in report.failure

    def test_no_physical_link_fails(self):
        net = network("a b(10)\nc d(10)")
        report = net.deliver("a", "c!user")
        assert not report.delivered
        assert "no link" in report.failure

    def test_loop_detected(self):
        net = network("a b(10)\nb a(10)")
        report = net.deliver("a", "b!a!" * 50 + "user")
        assert not report.delivered
        assert "budget" in report.failure

    def test_local_delivery(self):
        net = network("a b(10)")
        report = net.deliver("a", "user")
        assert report.delivered
        assert report.final_host == "a"
        assert report.hop_count == 0

    def test_source_route_across_rfc_hosts(self):
        net = network("a b(10)\nb c(10)",
                      default=MailerStyle.RFC822_RIGID)
        report = net.deliver("a", "@b:user@c")
        assert report.delivered
        assert report.hops == ["b", "c"]


class TestMixedSyntaxAblation:
    """Routes computed WITH the penalty survive rigid relays; routes
    computed without it can die (the E10 experiment in miniature)."""

    MAP = ("src @arpagw(10), uucp1(100)\n"
           "arpagw mid(10)\n"
           "uucp1 mid(100)\n"
           "mid dest(10)\n")

    def test_with_penalty_route_is_pure_bang(self):
        table = Pathalias().run_text(self.MAP, localhost="src")
        route = table.route("dest")
        assert "@" not in route

    def test_without_penalty_route_mixes(self):
        table = Pathalias(
            heuristics=HeuristicConfig(mixed_penalty=0)
        ).run_text(self.MAP, localhost="src")
        route = table.route("dest")
        assert "@" in route and "!" in route

    def test_delivery_outcomes_differ(self):
        vulnerable = Pathalias(
            heuristics=HeuristicConfig(mixed_penalty=0)
        ).run_text(self.MAP, localhost="src").route("dest")
        safe = Pathalias().run_text(self.MAP, localhost="src") \
            .route("dest")
        net = network(self.MAP)  # every host bang-rigid
        bad = net.deliver_route("src", vulnerable)
        good = net.deliver_route("src", safe)
        assert good.delivered and good.final_host == "dest"
        assert not (bad.delivered and bad.final_host == "dest")
