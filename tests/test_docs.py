"""The documentation suite stays true (tier-1 mirror of the CI docs job).

``tools/check_docs.py`` is the single source of truth for what
"documented" means — the protocol page lists exactly the daemons'
verbs, relative links resolve, and the service tier's public API
carries docstrings.  Running it here means drift fails the tier-1
suite locally, not just the CI docs job.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _tool():
    sys.path.insert(0, str(REPO / "tools"))
    try:
        import check_docs
    finally:
        sys.path.pop(0)
    return check_docs


class TestDocsSuite:
    def test_protocol_page_matches_daemon_verbs(self):
        problems: list = []
        _tool().check_protocol(problems)
        assert problems == []

    def test_verbs_tables_match_actual_dispatch(self):
        """VERBS (what the docs are checked against) names exactly
        the verbs handle_line dispatches — closing the loop so docs
        == VERBS == code."""
        problems: list = []
        _tool().check_dispatch(problems)
        assert problems == []

    def test_dispatch_checker_notices_unlisted_verb(self, monkeypatch):
        """Drop a verb from a VERBS table and the dispatch check must
        flag the handle_line branch it no longer covers."""
        tool = _tool()
        from repro.service.daemon import RouteService

        trimmed = tuple(v for v in RouteService.VERBS if v != "STATS")
        monkeypatch.setattr(RouteService, "VERBS", trimmed)
        problems: list = []
        tool.check_dispatch(problems)
        assert any("dispatches STATS" in p for p in problems)

    def test_markdown_links_resolve(self):
        problems: list = []
        _tool().check_links(problems)
        assert problems == []

    def test_snapshot_format_page_documents_writer_tags(self):
        problems: list = []
        _tool().check_snapshot_tags(problems)
        assert problems == []

    def test_tag_checker_notices_a_missing_tag(self, tmp_path,
                                               monkeypatch):
        """The tag check is a real check: drop a tag from the marker
        and it must complain."""
        tool = _tool()
        docs = tmp_path / "docs"
        docs.mkdir()
        page = (REPO / "docs" / "snapshot-format.md").read_text()
        broken = page.replace(
            "<!-- table-tags RECS UNRC TREE STAT BLOB DFSM -->",
            "<!-- table-tags RECS UNRC TREE BLOB DFSM -->")
        assert broken != page
        (docs / "snapshot-format.md").write_text(broken)
        monkeypatch.setattr(tool, "REPO", tmp_path)
        problems: list = []
        tool.check_snapshot_tags(problems)
        assert any("table-tags marker" in p for p in problems)

    def test_service_public_api_is_docstringed(self):
        problems: list = []
        _tool().check_docstrings(problems)
        assert problems == []

    def test_checker_notices_a_verb_gap(self, tmp_path, monkeypatch):
        """The protocol check is a real check: drop a verb from the
        marker and it must complain."""
        tool = _tool()
        docs = tmp_path / "docs"
        docs.mkdir()
        page = (REPO / "docs" / "protocol.md").read_text()
        broken = page.replace(
            "<!-- verbs:federation ROUTE EXACT SOURCE SHARDS ATTACH "
            "DETACH RELOAD PIPELINE STATS QUIT -->",
            "<!-- verbs:federation ROUTE EXACT SOURCE SHARDS ATTACH "
            "DETACH RELOAD PIPELINE STATS -->")
        assert broken != page
        (docs / "protocol.md").write_text(broken)
        monkeypatch.setattr(tool, "REPO", tmp_path)
        problems: list = []
        tool.check_protocol(problems)
        assert any("verbs:federation" in p for p in problems)
