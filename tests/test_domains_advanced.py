"""Advanced domain scenarios: the complete Domains-section figures,
including the masquerade coexisting with the full tree."""

from repro import HeuristicConfig, Pathalias
from repro.config import INF


class TestFullDomainFigure:
    """seismo gateways .edu; .rutgers under .edu holds caip and blue;
    additionally caip gateways a masquerading top-level .rutgers.edu —
    the paper's final figure, assembled whole."""

    MAP = """\
local\tseismo(DEDICATED), caip(WEEKLY)
seismo\tlocal(DEDICATED), .edu(DEDICATED)
.edu = {.rutgers}
.rutgers = {caip, blue}
caip\t.rutgers.edu(0)
.rutgers.edu = {blue}
blue\tcaip(LOCAL)
"""

    def run(self, **heur):
        cfg = HeuristicConfig(**heur) if heur else None
        return Pathalias(heuristics=cfg).run_text(self.MAP,
                                                  localhost="local")

    def test_both_domains_printed(self):
        table = self.run()
        assert table.lookup(".edu") is not None
        # .rutgers.edu is reachable two ways; via caip it is top-level
        # (parent not a domain), via .edu it is a subdomain.  Whichever
        # label wins, blue must resolve.
        names = {r.name for r in table}
        assert any(n.endswith(".rutgers.edu") or n == ".rutgers.edu"
                   for n in names) or ".edu" in names

    def test_blue_reachable_under_qualified_name(self):
        table = self.run()
        qualified = [r for r in table
                     if r.name.startswith("blue")]
        assert qualified, "blue must appear (qualified or bare)"
        record = qualified[0]
        assert record.route.count("%s") == 1

    def test_cheapest_wins_between_gateways(self):
        """seismo's DEDICATED chain is far cheaper than local's WEEKLY
        link to caip, so blue routes via seismo."""
        table = self.run()
        blue = next(r for r in table if r.name.startswith("blue"))
        assert "seismo" in blue.route

    def test_direct_caip_path_when_seismo_dies(self):
        """Cut seismo: the masquerade (caip gateway) carries blue."""
        crippled = self.MAP.replace("local\tseismo(DEDICATED), ",
                                    "local\t")
        table = Pathalias().run_text(crippled, localhost="local")
        blue = next((r for r in table if r.name.startswith("blue")),
                    None)
        assert blue is not None
        assert "caip" in blue.route
        assert blue.cost < INF  # no relay penalty: caip is a gateway


class TestDomainEdgeCases:
    def test_domain_with_no_gateway_is_isolated(self):
        table = Pathalias().run_text(
            "local other(10)\n.lost = {orphan}\norphan .lost(0)",
            localhost="local")
        # No link into the domain or its member: unreachable.
        assert "orphan" in table.unreachable

    def test_nested_three_level_tree(self):
        table = Pathalias().run_text(
            "local gw(10)\ngw .edu(10)\n"
            ".edu = {.rutgers}\n.rutgers = {.dcs}\n.dcs = {aramis}",
            localhost="local")
        record = table.lookup("aramis.dcs.rutgers.edu")
        assert record is not None
        assert record.route == "gw!aramis.dcs.rutgers.edu!%s"

    def test_domain_member_also_uucp_host(self):
        """Multi-homing: cheaper UUCP path wins, bare name printed."""
        table = Pathalias().run_text(
            "local caip(25), gw(5000)\ngw .edu(0)\n.edu = {caip}",
            localhost="local")
        assert table.lookup("caip") is not None
        assert table.lookup("caip").cost == 25
        assert table.lookup("caip.edu") is None

    def test_domain_path_wins_when_cheaper(self):
        table = Pathalias().run_text(
            "local caip(30000), gw(5)\ngw .edu(0)\n.edu = {caip}",
            localhost="local")
        assert table.lookup("caip.edu") is not None
        assert table.lookup("caip.edu").cost == 5
        assert table.lookup("caip") is None

    def test_two_parents_same_domain(self):
        """A domain declared under two parents: traversal picks the
        tree parent; names stay consistent with the chosen path."""
        table = Pathalias().run_text(
            "local gw1(10), gw2(20)\n"
            "gw1 .alpha(0)\ngw2 .beta(0)\n"
            ".alpha = {.shared}\n.beta = {.shared}\n"
            ".shared = {member}",
            localhost="local")
        records = [r for r in table if r.name.startswith("member")]
        assert len(records) == 1
        assert records[0].name == "member.shared.alpha"

    def test_subdomain_never_printed_even_when_cheapest(self):
        table = Pathalias().run_text(
            "local gw(10)\ngw .edu(0)\n.edu = {.sub}\n.sub = {host}",
            localhost="local")
        names = {r.name for r in table}
        assert ".sub.edu" not in names
        assert ".edu" in names
