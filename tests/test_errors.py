"""Error-hierarchy tests plus a parser fuzz harness.

Every failure the library raises must be a PathaliasError subtype with
source coordinates where applicable — and no input, however mangled,
may crash with anything else (the fuzz tests enforce it).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Pathalias
from repro.errors import (
    AddressError,
    CostExpressionError,
    GraphError,
    InputError,
    MappingError,
    ParseError,
    PathaliasError,
    RouteError,
    ScanError,
)
from repro.mailer.address import MailerStyle, parse_address
from repro.parser.grammar import parse_text


class TestHierarchy:
    def test_all_errors_are_pathalias_errors(self):
        for cls in (InputError, ScanError, ParseError,
                    CostExpressionError, GraphError, MappingError,
                    RouteError, AddressError):
            assert issubclass(cls, PathaliasError)

    def test_input_errors_are_input_errors(self):
        for cls in (ScanError, ParseError, CostExpressionError):
            assert issubclass(cls, InputError)

    def test_pretty_format_with_line(self):
        err = ParseError("bad statement", "d.map", 12)
        assert str(err) == '"d.map", line 12: bad statement'

    def test_pretty_format_without_line(self):
        err = InputError("truncated", "d.map")
        assert str(err) == '"d.map": truncated'

    def test_attributes_preserved(self):
        err = ScanError("oops", "f", 3)
        assert err.filename == "f"
        assert err.line == 3
        assert err.message == "oops"


class TestCatchability:
    """One except clause at the facade boundary must be enough."""

    @pytest.mark.parametrize("bad_input,localhost", [
        ("a b(", "a"),              # unterminated cost
        ("a b(1)) ", "a"),          # unbalanced paren
        ("= b", "a"),               # statement starts with '='
        ("a b(UNKNOWN_SYM)", "a"),  # unknown symbol
        ("a b(1/0)", "a"),          # division by zero
        ("a b(1)", "ghost"),        # unknown localhost
        ('file fred', "a"),         # unquoted file name
        ("adjust {x}", "a"),        # adjust without cost
    ])
    def test_facade_raises_pathalias_error(self, bad_input, localhost):
        with pytest.raises(PathaliasError):
            Pathalias().run_text(bad_input, localhost=localhost)


printable_junk = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=200)


class TestFuzz:
    @given(printable_junk)
    @settings(max_examples=300, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_parser_never_crashes_unexpectedly(self, text):
        """Arbitrary printable junk either parses or raises InputError."""
        try:
            parse_text(text)
        except InputError:
            pass

    @given(printable_junk.map(lambda s: s.replace("\x00", "")))
    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_facade_never_crashes_unexpectedly(self, text):
        try:
            Pathalias().run_text(text, localhost="fuzzhost")
        except PathaliasError:
            pass

    @given(st.text(alphabet="abc!@%.,: ", min_size=1, max_size=60),
           st.sampled_from(list(MailerStyle)))
    @settings(max_examples=300, deadline=None)
    def test_address_parser_never_crashes(self, address, style):
        try:
            parse_address(address, style)
        except AddressError:
            pass
