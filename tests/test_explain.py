"""Route-explanation tests."""

import pytest

from repro.config import HeuristicConfig, INF
from repro.core.explain import explain_route, verify_explanation
from repro.core.mapper import Mapper
from repro.errors import RouteError
from repro.graph.build import build_graph
from repro.parser.grammar import parse_text

from tests.conftest import MOTOWN_MAP, PAPER_1981_MAP


def mapped(text: str, source: str, cfg: HeuristicConfig | None = None):
    graph = build_graph([("d.map", parse_text(text))])
    return Mapper(graph, cfg).run(source)


class TestBasicExplanations:
    def test_simple_chain(self):
        result = mapped("a b(10)\nb c(20)", "a")
        explanation = explain_route(result, "c")
        assert explanation.total_cost == 30
        assert [h.target for h in explanation.hops] == ["b", "c"]
        assert explanation.hops[0].base_cost == 10
        assert explanation.hops[1].cumulative == 30
        assert verify_explanation(explanation)

    def test_paper_example_hops(self):
        result = mapped(PAPER_1981_MAP, "unc")
        explanation = explain_route(result, "mit-ai")
        assert explanation.total_cost == 3395
        kinds = [h.kind for h in explanation.hops]
        assert kinds == ["normal", "normal", "normal",
                         "member-net", "net-member"]
        assert verify_explanation(explanation)

    def test_describe_is_readable(self):
        result = mapped(PAPER_1981_MAP, "unc")
        text = explain_route(result, "phs").describe()
        assert "route to phs (cost 800)" in text
        assert "unc -> duke" in text

    def test_source_explanation_empty(self):
        result = mapped("a b(10)", "a")
        explanation = explain_route(result, "a")
        assert explanation.hops == []
        assert explanation.total_cost == 0


class TestPenaltyAttribution:
    def test_mixed_syntax_penalty_named(self):
        cfg = HeuristicConfig(mixed_penalty=777)
        result = mapped("a @b(10)\nb c(20)", "a", cfg)
        explanation = explain_route(result, "c", cfg)
        reasons = [r for hop in explanation.hops
                   for r, _ in hop.penalties]
        assert any("'!' hop after '@'" in reason for reason in reasons)
        assert verify_explanation(explanation)
        assert explanation.total_cost == 10 + 20 + 777

    def test_domain_relay_penalty_named(self):
        cfg = HeuristicConfig()
        result = mapped(MOTOWN_MAP, "princeton", cfg)
        explanation = explain_route(result, "motown", cfg)
        reasons = [r for hop in explanation.hops
                   for r, _ in hop.penalties]
        assert any("relaying beyond a domain" in r for r in reasons)
        assert explanation.total_cost >= 425 + INF
        assert verify_explanation(explanation)

    def test_gateway_penalty_named(self):
        cfg = HeuristicConfig(gateway_penalty=5000)
        result = mapped("gatewayed {NET}\nNET = {m, n}(10)\n"
                        "src m(5)", "src", cfg)
        explanation = explain_route(result, "n", cfg)
        reasons = [r for hop in explanation.hops
                   for r, _ in hop.penalties]
        assert any("non-gateway" in r for r in reasons)
        assert verify_explanation(explanation)

    def test_subdomain_up_penalty_named(self):
        cfg = HeuristicConfig()
        result = mapped("src caip(10)\n.rutgers = {caip}\n"
                        ".edu = {.rutgers}", "src", cfg)
        explanation = explain_route(result, ".edu", cfg)
        reasons = [r for hop in explanation.hops
                   for r, _ in hop.penalties]
        assert any("subdomain to parent" in r for r in reasons)
        assert verify_explanation(explanation)


class TestErrors:
    def test_unknown_destination(self):
        result = mapped("a b(10)", "a")
        with pytest.raises(RouteError):
            explain_route(result, "ghost")

    def test_unit_cost_mapping_rejected(self):
        """Min-hop label costs are hop counts; explaining them as
        edge-weight sums would silently lie."""
        from repro.graph.build import build_graph
        from repro.parser.grammar import parse_text

        graph = build_graph([("m", parse_text("a b(10)\nb c(10)"))])
        result = Mapper(graph, unit_costs=True).run("a")
        with pytest.raises(RouteError):
            explain_route(result, "c")

    def test_unreachable_destination(self):
        cfg = HeuristicConfig(infer_back_links=False)
        result = mapped("a b(10)\nx y(10)", "a", cfg)
        with pytest.raises(RouteError):
            explain_route(result, "x", cfg)


class TestConsistencyAtScale:
    def test_every_route_reconstructs(self):
        """The two cost implementations (mapper and explainer) must
        agree on every host of a featureful map."""
        from repro.netsim.mapgen import MapParams, generate_map

        generated = generate_map(MapParams.small(seed=21))
        graph = build_graph([(n, parse_text(t, n))
                             for n, t in generated.files])
        result = Mapper(graph).run(generated.localhost)
        checked = 0
        for node in graph.nodes:
            if node.deleted or not result.best(node):
                continue
            explanation = explain_route(result, node)
            assert verify_explanation(explanation), node.name
            checked += 1
        assert checked > 100
