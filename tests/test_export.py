"""DOT-export tests."""

from repro.core.mapper import Mapper
from repro.graph.build import build_graph
from repro.graph.export import graph_to_dot, tree_to_dot
from repro.parser.grammar import parse_text

from tests.conftest import PAPER_1981_MAP


def graph_of(text: str):
    return build_graph([("d.map", parse_text(text))])


class TestGraphDot:
    def test_valid_digraph_structure(self):
        dot = graph_to_dot(graph_of("a b(10), c(20)"))
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"a" -> "b" [label="10"];' in dot
        assert '"a" -> "c" [label="20"];' in dot

    def test_networks_shaped_distinctly(self):
        dot = graph_to_dot(graph_of("NET = {a, b}(10)"))
        assert "ellipse" in dot
        assert '"NET"' in dot

    def test_domains_are_folders(self):
        dot = graph_to_dot(graph_of(".edu = {campus}"))
        assert "folder" in dot

    def test_alias_pair_rendered_once_undirected(self):
        dot = graph_to_dot(graph_of("a = b"))
        assert dot.count("dir=none") == 1

    def test_dead_links_grayed(self):
        dot = graph_to_dot(graph_of("a b(10)\ndead {a!b}"))
        assert "color=gray" in dot

    def test_deleted_nodes_absent(self):
        dot = graph_to_dot(graph_of("a b(10), c(10)\ndelete {b}"))
        assert '"b"' not in dot

    def test_quoting_of_odd_names(self):
        dot = graph_to_dot(graph_of("UNC-dwarf x.y(5)"))
        assert '"UNC-dwarf"' in dot
        assert '"x.y"' in dot

    def test_paper_map_renders(self):
        dot = graph_to_dot(graph_of(PAPER_1981_MAP))
        for host in ("unc", "duke", "phs", "research", "ucbvax",
                     "ARPA", "mit-ai"):
            assert f'"{host}"' in dot


class TestTreeDot:
    def test_tree_edges_with_operators(self):
        graph = graph_of(PAPER_1981_MAP)
        result = Mapper(graph).run("unc")
        dot = tree_to_dot(result)
        assert '"unc" -> "duke" [label="! left"];' in dot
        assert '[label="@ right"]' in dot  # the ARPA entry edge

    def test_costs_in_vertex_labels(self):
        graph = graph_of(PAPER_1981_MAP)
        result = Mapper(graph).run("unc")
        dot = tree_to_dot(result)
        assert "duke\\n500" in dot
        assert "mit-ai\\n3395" in dot

    def test_domain_qualified_names_used(self):
        graph = graph_of("local caip(10)\n.rutgers.edu = {caip, blue}")
        result = Mapper(graph).run("local")
        dot = tree_to_dot(result)
        assert "blue.rutgers.edu" in dot

    def test_second_best_states_distinct(self):
        from repro.config import HeuristicConfig
        from tests.conftest import MOTOWN_MAP

        graph = graph_of(MOTOWN_MAP)
        result = Mapper(graph,
                        HeuristicConfig(second_best=True)) \
            .run("princeton")
        dot = tree_to_dot(result)
        # topaz appears twice: plain and domain-qualified state.
        assert '"topaz"' in dot
        assert "topaz.rutgers.edu" in dot
