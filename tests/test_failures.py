"""Link-failure injection tests."""

import pytest

from repro.core.mapper import Mapper
from repro.core.printer import print_routes
from repro.graph.build import build_graph
from repro.netsim.failures import kill_links, survival
from repro.parser.grammar import parse_text

from tests.conftest import PAPER_1981_MAP


def graph_of(text: str):
    return build_graph([("d.map", parse_text(text))])


class TestInjection:
    def test_kill_fraction(self):
        graph = graph_of("\n".join(f"h{i} h{i+1}(10)"
                                   for i in range(50)))
        before = graph.link_count
        injection = kill_links(graph, fraction=0.2, seed=1)
        assert graph.link_count == before - len(injection.killed)
        assert len(injection.killed) == int(before * 0.2)

    def test_restore(self):
        graph = graph_of("a b(10)\nb c(10)\nc a(10)")
        before = graph.link_count
        injection = kill_links(graph, fraction=1.0, seed=2)
        assert graph.link_count == 0
        injection.restore()
        assert graph.link_count == before

    def test_deterministic_by_seed(self):
        texts = "a b(1)\nb c(1)\nc d(1)\nd a(1)"
        g1, g2 = graph_of(texts), graph_of(texts)
        k1 = kill_links(g1, 0.5, seed=7)
        k2 = kill_links(g2, 0.5, seed=7)
        names1 = sorted((n.name, l.to.name) for n, l in k1.killed)
        names2 = sorted((n.name, l.to.name) for n, l in k2.killed)
        assert names1 == names2

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            kill_links(graph_of("a b(1)"), 1.5)

    def test_only_requested_kinds_killed(self):
        graph = graph_of("a b(10)\nNET = {a, b}(5)")
        injection = kill_links(graph, fraction=1.0, seed=3)
        # Only the NORMAL a->b link dies; the net star survives.
        assert len(injection.killed) == 1
        assert graph.link_count == 4


class TestSurvival:
    def test_undamaged_routes_survive(self):
        graph = graph_of(PAPER_1981_MAP)
        table = print_routes(Mapper(graph).run("unc"))
        report = survival(table, graph, "unc")
        assert report.survival_rate == 1.0
        assert report.broken == []

    def test_cut_artery_breaks_downstream(self):
        graph = graph_of(PAPER_1981_MAP)
        table = print_routes(Mapper(graph).run("unc"))
        # Kill the unc->duke link specifically.
        unc = graph.require("unc")
        unc.links = [l for l in unc.links if l.to.name != "duke"]
        report = survival(table, graph, "unc")
        # Everything except unc itself and phs... all routes start
        # with duke: only the local route survives.
        assert report.survived == 1
        assert set(report.broken) == {"duke", "phs", "research",
                                      "ucbvax", "mit-ai", "stanford"}

    def test_partial_damage_partial_survival(self):
        generated_text = "\n".join(
            [f"hub s{i}(10)" for i in range(10)]
            + [f"s{i} hub(10)" for i in range(10)])
        graph = graph_of(generated_text)
        table = print_routes(Mapper(graph).run("hub"))
        kill_links(graph, fraction=0.3, seed=5)
        report = survival(table, graph, "hub")
        assert 0 < report.survival_rate < 1.0

    def test_realistic_map_survival_shape(self):
        """Killing 10% of links strands some—but not most—routes."""
        from repro.netsim.mapgen import MapParams, generate_map

        generated = generate_map(MapParams.small(seed=41))
        graph = build_graph([(n, parse_text(t, n))
                             for n, t in generated.files])
        table = print_routes(Mapper(graph).run(generated.localhost))
        kill_links(graph, fraction=0.10, seed=6)
        report = survival(table, graph, generated.localhost)
        assert 0.3 < report.survival_rate < 1.0
