"""Sharded federation: ownership, gateway stitching, daemon verbs.

The fixtures are the three regional maps under ``tests/data`` —
``d.backbone``, ``d.universities``, ``d.arpa`` — served as independent
shards, which is exactly the multi-map UUCP deployment the federation
tier exists for.  The acceptance bar: a cross-shard lookup returns a
stitched ``%s`` route byte-equal to routing the *concatenated* map
through the same gateway.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

import pytest

from repro.core.pathalias import Pathalias
from repro.errors import FederationError, RouteError
from repro.mailer.router import MailRouter
from repro.service.daemon import serve
from repro.service.federation import (
    FederatedRouteDatabase,
    FederationService,
)
from repro.service.shard import FederationView, Shard
from repro.service.store import SnapshotReader, build_snapshot

DATA = Path(__file__).parent / "data"
REGIONS = ("backbone", "universities", "arpa")


@pytest.fixture(scope="module")
def shard_paths(tmp_path_factory):
    """One snapshot per regional map, built once for the module."""
    tmp = tmp_path_factory.mktemp("shards")
    paths = {}
    for name in REGIONS:
        text = (DATA / f"d.{name}").read_text()
        path = tmp / f"{name}.snap"
        build_snapshot(Pathalias().build([(f"d.{name}", text)]), path)
        paths[name] = str(path)
    return paths


@pytest.fixture(scope="module")
def view(shard_paths):
    return FederationView(
        [Shard.open(name, path) for name, path in shard_paths.items()])


@pytest.fixture(scope="module")
def concat_tool():
    """The same three maps parsed as one graph (the oracle)."""
    named = [(f"d.{name}", (DATA / f"d.{name}").read_text())
             for name in REGIONS]
    return Pathalias().build(named)


def concat_table(concat_tool, source):
    from repro.core.fastmap import map_routes
    from repro.graph.compact import CompactGraph

    return map_routes(CompactGraph.compile(concat_tool), source)


class TestMergedIndex:
    def test_domain_names_exposed_by_reader(self, shard_paths):
        reader = SnapshotReader.open(shard_paths["arpa"])
        assert reader.domain_names() == [".berkeley", ".edu",
                                         ".rutgers"]
        assert SnapshotReader.open(
            shard_paths["backbone"]).domain_names() == []

    def test_routing_index_merges_sources_and_domains(self,
                                                      shard_paths):
        reader = SnapshotReader.open(shard_paths["arpa"])
        index = reader.routing_index()
        assert index == sorted(index)
        assert (".edu", True) in index
        assert ("seismo", False) in index

    def test_ownership_by_longest_suffix(self, view):
        assert view.owners_of("topaz") == ("topaz", ("universities",))
        assert view.owners_of("caip.rutgers.edu") == (".edu", ("arpa",))
        assert view.owners_of("allegra") == (
            "allegra", ("backbone", "universities"))
        assert view.owners_of("nowhere") == ("", ())

    def test_gateways_are_shared_table_hosts(self, view):
        assert view.gateways("backbone", "universities") == (
            "allegra", "cornell", "harvard", "princeton")
        assert view.gateways("backbone", "arpa") == ("seismo",
                                                     "ucbvax")
        assert view.gateways("universities", "arpa") == ()
        # symmetric
        assert view.gateways("arpa", "backbone") == (
            view.gateways("backbone", "arpa"))

    def test_home_shard_deterministic_for_gateways(self, view):
        # princeton has tables in backbone and universities; the
        # lexicographically first shard name wins, every time.
        assert view.home_shard("princeton").name == "backbone"
        assert view.home_shard("topaz").name == "universities"
        assert view.home_shard("ghost") is None


class TestStitching:
    def test_cross_shard_route_byte_equal_to_concat_map(
            self, view, concat_tool):
        """The acceptance bar: stitching through the gateway equals
        routing the concatenated map through the same gateway."""
        fed = view.resolve_with_cost("ihnp4", "topaz", "user")
        assert fed.federated
        gateway, entered = fed.via[0]
        assert (gateway, entered) == ("allegra", "universities")
        # stitch the oracle through the same gateway: concat-map route
        # ihnp4 -> allegra, then concat-map route allegra -> topaz.
        oracle = concat_table(concat_tool, "ihnp4")
        leg_a = oracle.route(gateway)
        leg_b = concat_table(concat_tool, gateway).route("topaz")
        assert fed.resolution.route == leg_a.replace("%s", leg_b, 1)
        # and the whole stitched route is byte-equal to the
        # concatenated map's own shortest path.
        assert fed.resolution.route == oracle.route("topaz")
        assert fed.cost == 650
        assert fed.resolution.address == \
            "allegra!princeton!rutgers-ru!topaz!user"

    def test_cross_shard_domain_suffix_route(self, view, concat_tool):
        fed = view.resolve_with_cost("ihnp4", "caip.rutgers.edu",
                                     "honey")
        assert fed.via == (("seismo", "arpa"),)
        assert fed.resolution.matched == "caip.rutgers.edu"
        oracle = concat_table(concat_tool, "ihnp4")
        assert fed.resolution.route == oracle.route("caip.rutgers.edu")
        assert fed.resolution.route == "seismo!caip.rutgers.edu!%s"
        assert fed.resolution.address == "seismo!caip.rutgers.edu!honey"
        assert fed.cost == 395

    def test_transit_shard_route(self, view, concat_tool):
        """topaz lives only in universities; mit-ai only in ARPA; no
        shared gateway — the route transits the backbone shard."""
        fed = view.resolve_with_cost("topaz", "mit-ai", "minsky")
        assert len(fed.via) == 2
        assert fed.via[1] == ("seismo", "arpa")
        oracle = concat_table(concat_tool, "topaz")
        assert fed.resolution.route == oracle.route("mit-ai")
        assert fed.resolution.address == \
            fed.resolution.route.replace("%s", "minsky", 1)

    def test_mixed_syntax_template_stitches(self, view):
        """An @-style inner template lands inside the outer bang path
        with its single %s intact."""
        fed = view.resolve_with_cost("princeton", "mit-ai", "bob")
        assert fed.resolution.route == "allegra!seismo!%s@mit-ai"
        assert fed.resolution.address == "allegra!seismo!bob@mit-ai"
        assert fed.cost == 695

    def test_without_user_keeps_relative_template(self, view):
        fed = view.resolve_with_cost("ihnp4", "topaz")
        assert fed.resolution.address == fed.resolution.route
        assert fed.resolution.route.count("%s") == 1

    def test_exact_lookup_federates(self, view):
        fed = view.exact("ihnp4", "topaz")
        assert fed.cost == 650
        assert fed.resolution.route == \
            "allegra!princeton!rutgers-ru!topaz!%s"
        with pytest.raises(RouteError):
            # EXACT consults the merged index verbatim: display names
            # match, but no suffix walk happens.
            view.exact("ihnp4", "x.edu")


class TestStitchedCostExactness:
    """Stitched costs read exact per-state numbers from v2 shards —
    and match the concatenated-map mapper *exactly*, source by
    source, destination by destination.

    Scope: every source outside the ``@``-style ARPA net.  For an
    ARPA member the single-label concat mapper contaminates its own
    labels with the mixed-syntax penalty (an ``!`` hop after the
    ``@`` entry), a paper-known artifact of one label per node that
    no per-shard decomposition can — or should — reproduce; each
    shard prices its own region (see shard.py).
    """

    def pure_sources(self, view):
        arpa = view.shards["arpa"]
        return [s for s in view.sources() if not arpa.has_source(s)]

    def test_every_pair_matches_concat_mapper(self, view,
                                              concat_tool):
        from repro.errors import RouteError
        from repro.mailer.routedb import RouteDatabase

        sources = self.pure_sources(view)
        assert len(sources) >= 15  # the fixtures' non-ARPA world
        # destinations: every table-owning host plus suffix-matched
        # domain members (exercise the domain walk across shards)
        destinations = view.sources() + ["caip.rutgers.edu",
                                         "ernie.berkeley.edu",
                                         "x.edu"]
        checked = 0
        for source in sources:
            oracle = RouteDatabase.from_table(
                concat_table(concat_tool, source))
            for dest in destinations:
                if dest == source:
                    continue
                try:
                    want_cost, want = oracle.resolve_with_cost(
                        dest, "user")
                except RouteError:
                    want_cost = want = None
                try:
                    fed = view.resolve_with_cost(source, dest,
                                                 "user")
                except RouteError:  # includes FederationError
                    assert want is None, (
                        f"{source}->{dest}: concat resolves "
                        f"({want_cost}), federation does not")
                    continue
                assert want is not None, (
                    f"{source}->{dest}: federation resolves "
                    f"({fed.cost}), concat does not")
                assert fed.cost == want_cost, (
                    f"{source}->{dest}: stitched {fed.cost} != "
                    f"concat {want_cost} (via {fed.via})")
                # addresses (fully instantiated) compare uniformly:
                # on a domain match the federation's template is
                # already gateway-relative, the oracle's is not.
                assert fed.resolution.address == want.address, (
                    f"{source}->{dest}: stitched address "
                    f"{fed.resolution.address!r} != concat "
                    f"{want.address!r}")
                checked += 1
        assert checked > 400  # the suite really swept the matrix

    def test_gateway_legs_priced_from_state_records(self, view):
        """The stitch's gateway costs come from the v2 STAT block
        (exact mapper state costs, keyed by node), and agree with the
        printed record where both exist."""
        backbone = view.shards["backbone"]
        assert backbone.reader.has_state_costs
        for gate in view.gateways("backbone", "universities"):
            exact = backbone.state_cost("ihnp4", gate)
            record = backbone.table("ihnp4").cost(gate)
            assert exact is not None
            assert exact == record

    def test_state_cost_covers_unprinted_nodes(self, view):
        """Per-state costs answer for nodes the route records cannot:
        the ARPA net placeholder has no printed record, but its exact
        mapped cost is stored."""
        arpa = view.shards["arpa"]
        cost = arpa.state_cost("seismo", "ARPA")
        assert cost is not None
        assert arpa.table("seismo").cost("ARPA") is None

    def test_v1_shards_fall_back_to_record_costs(self, shard_paths,
                                                 tmp_path):
        """A v1 shard has no STAT block; state_cost answers None and
        the stitch keeps using record costs — same routes, same
        costs, on these fixtures."""
        from repro.service.store import upgrade_snapshot

        v1 = tmp_path / "backbone1.snap"
        text = (DATA / "d.backbone").read_text()
        build_snapshot(Pathalias().build([("d.backbone", text)]), v1,
                       fmt=1)
        mixed = FederationView(
            [Shard.open("backbone", v1),
             Shard.open("universities", shard_paths["universities"]),
             Shard.open("arpa", shard_paths["arpa"])])
        assert mixed.shards["backbone"].state_cost(
            "ihnp4", "allegra") is None
        fed = mixed.resolve_with_cost("ihnp4", "topaz", "user")
        assert fed.cost == 650
        assert fed.resolution.address == \
            "allegra!princeton!rutgers-ru!topaz!user"
        # ... and an upgraded v1 shard prices identically to native v2
        up = tmp_path / "backbone2.snap"
        upgrade_snapshot(v1, up)
        assert Shard.open("backbone", up).state_cost(
            "ihnp4", "allegra") == 300


class TestEdgeCases:
    def test_dest_in_two_shards_cheapest_wins(self, view):
        """seismo has tables in backbone (cost 300 from ucbvax) and in
        ARPA (cost 95 over the ARPANET); the cheap regional view wins."""
        fed = view.resolve_with_cost("ucbvax", "seismo")
        assert fed.cost == 95
        assert fed.resolution.route == "%s@seismo"

    def test_tie_prefers_local_shard(self, view):
        """ihnp4 -> harvard costs 600 both locally and stitched via
        allegra; fewer crossings wins the tie, deterministically."""
        fed = view.resolve_with_cost("ihnp4", "harvard", "u")
        assert fed.cost == 600
        assert not fed.federated
        assert fed.resolution.address == "allegra!harvard!u"

    def test_gateway_missing_is_federation_error(self, shard_paths):
        """universities and ARPA share no host: with the backbone shard
        gone there is no gateway chain, and the failure is the distinct
        FederationError, not a generic miss."""
        two = FederationView([
            Shard.open("universities", shard_paths["universities"]),
            Shard.open("arpa", shard_paths["arpa"])])
        with pytest.raises(FederationError, match="no gateway chain"):
            two.resolve_with_cost("princeton", "mit-ai")

    def test_unknown_destination_is_plain_route_error(self, view):
        with pytest.raises(RouteError) as err:
            view.resolve_with_cost("ihnp4", "nowhere")
        assert not isinstance(err.value, FederationError)

    def test_unknown_source(self, view):
        with pytest.raises(RouteError, match="no shard"):
            view.resolve_with_cost("ghost", "topaz")

    def test_duplicate_shard_names_rejected(self, shard_paths):
        with pytest.raises(FederationError, match="duplicate"):
            FederationView([
                Shard.open("x", shard_paths["backbone"]),
                Shard.open("x", shard_paths["arpa"])])

    def test_view_swap_helpers(self, view, shard_paths):
        smaller = view.without_shard("arpa")
        assert smaller.shard_names() == ["backbone", "universities"]
        assert view.shard_names() == ["arpa", "backbone",
                                      "universities"]  # unchanged
        back = smaller.with_shard(Shard.open("arpa",
                                             shard_paths["arpa"]))
        assert back.shard_names() == view.shard_names()
        with pytest.raises(FederationError):
            smaller.without_shard("arpa")

    def test_replacement_patch_equals_full_rebuild(self, view,
                                                   shard_paths):
        """``with_shard`` on an existing name patches the merged
        structures in place of a rebuild; the result must be
        indistinguishable from constructing the view from scratch."""
        swapped = Shard.open("universities",
                             shard_paths["universities"])
        patched = view.with_shard(swapped)
        rebuilt = FederationView(
            [s for n, s in view.shards.items()
             if n != "universities"] + [swapped])
        assert list(patched.shards) == list(rebuilt.shards)
        assert patched._owners == rebuilt._owners
        assert patched._gateways == rebuilt._gateways
        assert patched._all_gates == rebuilt._all_gates
        assert patched._has_remote == rebuilt._has_remote


async def request(reader, writer, line: str) -> str:
    writer.write(line.encode() + b"\n")
    await writer.drain()
    return (await reader.readline()).decode().rstrip("\n")


class TestFederationDaemon:
    def test_protocol(self, shard_paths):
        async def scenario():
            service = FederationService(shard_paths,
                                        default_source="ihnp4")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            assert await request(r, w, "ROUTE topaz user") == \
                ("OK 650 topaz allegra!princeton!rutgers-ru!topaz!%s "
                 "allegra!princeton!rutgers-ru!topaz!user")
            assert await request(r, w, "EXACT topaz") == \
                "OK 650 topaz allegra!princeton!rutgers-ru!topaz!%s"
            assert await request(r, w, "SOURCE princeton") == \
                "OK source princeton backbone"
            assert await request(r, w, "ROUTE mit-ai bob") == \
                ("OK 695 mit-ai allegra!seismo!%s@mit-ai "
                 "allegra!seismo!bob@mit-ai")
            shards = await request(r, w, "SHARDS")
            assert shards.startswith("OK 3 arpa=17:")
            assert "backbone=10:" in shards
            assert (await request(r, w, "ROUTE nowhere")) == \
                "ERR noroute nowhere"
            assert (await request(r, w, "SOURCE ghost")).startswith(
                "ERR unknown-source")
            assert (await request(r, w, "RELOAD ghost x")).startswith(
                "ERR unknown-shard")
            stats = await request(r, w, "STATS")
            assert "shards=3" in stats and "federated=" in stats
            assert await request(r, w, "QUIT") == "OK bye"
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_detach_turns_stitch_into_federation_error(self,
                                                       shard_paths):
        async def scenario():
            service = FederationService(shard_paths,
                                        default_source="princeton")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            ok = await request(r, w, "ROUTE mit-ai bob")
            assert ok.startswith("OK 695 ")
            assert await request(r, w, "DETACH backbone") == \
                "OK detached backbone"
            err = await request(r, w, "ROUTE mit-ai bob")
            assert err.startswith("ERR federation ")
            # local routing inside the remaining shards still works
            assert (await request(r, w, "ROUTE topaz u")).startswith(
                "OK 50 topaz")
            reply = await request(
                r, w, f"ATTACH backbone {shard_paths['backbone']}")
            assert reply.startswith("OK attached backbone 10 ")
            assert (await request(r, w, "ROUTE mit-ai bob")
                    ).startswith("OK 695 ")
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_pinned_format_enforced_on_attach_and_reload(
            self, shard_paths, tmp_path):
        """The federation's --format pin covers ATTACH and per-shard
        RELOAD, not just startup."""
        from repro.service.store import SnapshotError

        v1 = tmp_path / "fmt1.snap"
        build_snapshot(
            Pathalias().build(
                [("d.backbone",
                  (DATA / "d.backbone").read_text())]),
            v1, fmt=1)
        with pytest.raises(SnapshotError, match="--format 2"):
            FederationService({"backbone": str(v1)}, require_format=2)

        async def scenario():
            service = FederationService(shard_paths,
                                        default_source="ihnp4",
                                        require_format=2)
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            reply = await request(r, w, f"RELOAD backbone {v1}")
            assert reply.startswith("ERR reload")
            assert "--format 2" in reply
            reply = await request(r, w, f"ATTACH extra {v1}")
            assert reply.startswith("ERR attach")
            # the pinned federation keeps serving v2 shards only
            stats = await request(r, w, "STATS")
            assert "formats=2,2,2" in stats
            assert (await request(r, w, "ROUTE topaz u")).startswith(
                "OK 650 ")
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_shard_reload_leaves_other_shards_serving(self, shard_paths,
                                                      tmp_path):
        """Reloading one shard must not disturb lookups whose answers
        live wholly in the other shards."""
        revised = (DATA / "d.universities").read_text().replace(
            "princeton\tallegra(DEMAND), rutgers-ru(LOCAL), "
            "winnie(HOURLY)",
            "princeton\tallegra(DEMAND), rutgers-ru(DEMAND), "
            "winnie(HOURLY)")
        assert "rutgers-ru(DEMAND)" in revised
        revised_snap = tmp_path / "universities2.snap"
        build_snapshot(
            Pathalias().build([("d.universities", revised)]),
            revised_snap)

        async def scenario():
            service = FederationService(shard_paths,
                                        default_source="ihnp4")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            assert (await request(r, w, "ROUTE topaz u")).startswith(
                "OK 650 ")
            reply = await request(
                r, w, f"RELOAD universities {revised_snap}")
            assert reply.startswith("OK reloaded universities 11 ")
            # the reloaded shard answers with the repriced link ...
            assert (await request(r, w, "ROUTE topaz u")).startswith(
                "OK 925 ")
            # ... and untouched shards kept their bytes and answers
            assert await request(r, w, "ROUTE mcvax piet") == \
                "OK 2100 mcvax seismo!mcvax!%s seismo!mcvax!piet"
            assert (await request(r, w,
                                  "ROUTE caip.rutgers.edu honey")) == \
                ("OK 395 caip.rutgers.edu seismo!caip.rutgers.edu!%s "
                 "seismo!caip.rutgers.edu!honey")
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())


class TestFederatedClient:
    def test_client_and_mail_router(self, shard_paths):
        from tests.test_daemon import _ThreadedDaemon

        class _FederatedDaemon(_ThreadedDaemon):
            def _make_service(self):
                return FederationService(self.snapshot_path,
                                         default_source=self.source)

        daemon = _FederatedDaemon(shard_paths, source="ihnp4")
        with daemon:
            with FederatedRouteDatabase(
                    ("127.0.0.1", daemon.port)) as db:
                assert db.route("topaz") == \
                    "allegra!princeton!rutgers-ru!topaz!%s"
                res = db.resolve("caip.rutgers.edu", "honey")
                assert res.address == "seismo!caip.rutgers.edu!honey"
                shards = db.shards()
                assert set(shards) == set(REGIONS)
                assert shards["backbone"][0] == 10
                assert db.reload_shard(
                    "backbone", shard_paths["backbone"]) == 10
                db.detach("arpa")
                assert set(db.shards()) == {"backbone",
                                            "universities"}
                assert db.attach("arpa", shard_paths["arpa"]) == 17
                stats = db.stats()
                assert stats["shards"] == "3"
            router = MailRouter.federated("ihnp4",
                                          ("127.0.0.1", daemon.port))
            envelope = router.route("user@topaz")
            assert envelope.transport_address == \
                "allegra!princeton!rutgers-ru!topaz!user"
            assert isinstance(router.db, FederatedRouteDatabase)
            router.db.close()
