"""Unit tests for the coalescing free-list allocator simulator."""

import pytest

from repro.adt.freelist import FreeListAllocator
from repro.adt.trace import churning_trace, pathalias_trace


class TestAllocFree:
    def test_alloc_then_free_then_realloc_reuses(self):
        allocator = FreeListAllocator(sbrk_chunk=4096)
        allocator.alloc(0, 100)
        grown = allocator.stats.system_bytes
        allocator.free(0)
        allocator.alloc(1, 100)
        assert allocator.stats.system_bytes == grown  # reused, no sbrk

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            FreeListAllocator().alloc(0, 0)

    def test_coalescing_merges_neighbors(self):
        allocator = FreeListAllocator(sbrk_chunk=64)
        # Three adjacent blocks, freed in an order that exercises both
        # predecessor and successor merging.
        allocator.alloc(0, 40)
        allocator.alloc(1, 40)
        allocator.alloc(2, 40)
        allocator.free(0)
        allocator.free(2)
        allocator.free(1)  # merges with both neighbors
        sizes = [blk.size for blk in allocator._free]
        # All space is one (or two, if chunk tails intervene) regions.
        assert len(sizes) <= 2

    def test_double_free_raises(self):
        allocator = FreeListAllocator()
        allocator.alloc(0, 32)
        allocator.free(0)
        with pytest.raises(KeyError):
            allocator.free(0)

    def test_split_leaves_remainder_free(self):
        allocator = FreeListAllocator(sbrk_chunk=4096)
        allocator.alloc(0, 64)
        allocator.free(0)
        allocator.alloc(1, 16)  # splits the 64-byte block
        assert any(blk.size > 0 for blk in allocator._free)


class TestTraceReplay:
    def test_pathalias_trace_valid(self):
        trace = pathalias_trace(nodes=150, links=450, seed=4)
        stats = FreeListAllocator().run(trace)
        assert stats.allocated_bytes == trace.total_allocated()

    def test_churn_trace_valid(self):
        trace = churning_trace(operations=2000, seed=5)
        trace.validate()
        stats = FreeListAllocator().run(trace)
        assert stats.allocated_bytes == trace.total_allocated()

    def test_churn_reuses_space(self):
        """Where coalescing pays: heavy interleaved free/alloc keeps the
        heap small relative to total bytes ever allocated."""
        trace = churning_trace(operations=4000, seed=6)
        stats = FreeListAllocator().run(trace)
        assert stats.system_bytes < trace.total_allocated()
