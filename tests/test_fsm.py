"""Compiled suffix-automaton dispatch: differential fuzz against the
dict walk on every lookup surface.

The automaton is a pure optimisation — its one contract is *byte
identity* with the per-suffix dict walk
(:meth:`repro.service.resolver.SuffixResolver.resolve_with_cost`).
These tests hold that contract over randomized label sets: degenerate
labels (empty, dotted edges), unicode-adjacent bytes, single-label
hosts, deep subdomains, overlapping suffixes, and absent names.
"""

from __future__ import annotations

import random

import pytest

from repro.core.pathalias import Pathalias
from repro.errors import RouteError
from repro.mailer.routedb import RouteDatabase
from repro.service.fsm import (
    FSM_MAGIC,
    NAME_F_DOMAIN,
    AutomatonError,
    FlatSuffixAutomaton,
    SuffixAutomaton,
    compile_keys,
    load,
)
from repro.service.resolver import domain_suffixes
from repro.service.shard import FederationView, Shard
from repro.service.store import SnapshotReader, build_snapshot


# -- the oracle ---------------------------------------------------------------

def walk_match(keys: set, target: str) -> str | None:
    """The paper's dict walk, verbatim: the first present suffix key
    (exact name first, then each leading-dot domain suffix)."""
    for key in domain_suffixes(target):
        if key in keys:
            return key
    return None


LABELS = [
    "a", "b", "ab", "edu", "com", "rutgers", "caip", "x",
    "seismo", "ihnp4", "",            # empty label: "a..b" forms
    "münchen", "café",      # unicode-adjacent bytes
    "xn--node", "very-long-label-with-many-characters",
]


def random_name(rng: random.Random, depth: int) -> str:
    return ".".join(rng.choice(LABELS) for _ in range(depth))


def random_key_set(rng: random.Random, n: int) -> list[str]:
    """Mixed exact-host and leading-dot domain keys, deduplicated,
    biased toward overlapping suffix chains."""
    keys: set = set()
    while len(keys) < n:
        name = random_name(rng, rng.randint(1, 5))
        if not name:
            continue
        if rng.random() < 0.4:
            keys.add("." + name)
        else:
            keys.add(name)
        # half the time, also insert a suffix of what we just made,
        # so deep/shallow domain keys compete for the same targets
        if rng.random() < 0.5 and "." in name:
            keys.add("." + name.split(".", 1)[1])
    return sorted(keys, key=lambda k: k.encode("utf-8"))


def probe_targets(rng: random.Random, keys: list) -> list:
    """Hits, near-misses, subdomain extensions, and absent names."""
    out = []
    for key in keys:
        out.append(key)                       # the key itself
        out.append(key.lstrip("."))           # dotless twin
        out.append(random_name(rng, 1) + key if key.startswith(".")
                   else "sub." + key)         # deeper than the key
    for _ in range(len(keys)):
        out.append(random_name(rng, rng.randint(1, 6)))  # mostly absent
    out.extend(["", ".", "..", "a.", ".a", "a..b", "!weird"])
    return out


# -- the matcher alone --------------------------------------------------------

class TestMatcherDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_match_agrees_with_walk(self, seed):
        rng = random.Random(seed)
        keys = random_key_set(rng, 40)
        auto = compile_keys(keys)
        flat = load(auto.to_bytes())
        inflated = flat.inflate()
        for target in probe_targets(rng, keys):
            expect = walk_match(set(keys), target)
            for impl in (auto, flat, inflated):
                idx = impl.match(target)
                got = keys[idx] if idx >= 0 else None
                assert got == expect, (
                    f"seed={seed} target={target!r}: "
                    f"{type(impl).__name__} matched {got!r}, "
                    f"walk matched {expect!r}")

    def test_exact_beats_domain(self):
        keys = [".edu", "a.edu"]             # payload = position in list
        auto = compile_keys(keys)
        assert keys[auto.match("a.edu")] == "a.edu"
        assert keys[auto.match("b.edu")] == ".edu"
        assert auto.match("edu") == -1       # ".edu" covers *.edu only

    def test_leading_dot_target_hits_literal_key(self):
        # a leading-dot *target* can match a leading-dot key exactly
        keys = sorted([".edu", ".rutgers.edu"],
                      key=lambda k: k.encode("utf-8"))
        auto = compile_keys(keys)
        assert keys[auto.match(".rutgers.edu")] == ".rutgers.edu"
        assert keys[auto.match(".other.edu")] == ".edu"

    def test_empty_keyset(self):
        auto = compile_keys([])
        assert auto.match("anything") == -1
        flat = load(auto.to_bytes())
        assert flat.match("anything") == -1


# -- serialization ------------------------------------------------------------

class TestSerialization:
    def test_round_trip_is_deterministic(self):
        # the block is a pure function of the (sorted) key sequence:
        # recompile → same bytes; inflate → recompile → same bytes
        rng = random.Random(99)
        keys = random_key_set(rng, 30)
        blob = compile_keys(keys).to_bytes()
        assert blob == compile_keys(list(keys)).to_bytes()
        assert blob.startswith(FSM_MAGIC)
        assert load(blob).inflate().to_bytes() == blob

    def test_names_round_trip(self):
        names = [("a.edu", 0), (".edu", NAME_F_DOMAIN)]
        auto = compile_keys([n for n, _ in names])
        blob = auto.to_bytes(names=names)
        assert load(blob).names() == names

    def test_corrupt_blobs_are_refused(self):
        blob = compile_keys(["a.b"]).to_bytes()
        with pytest.raises(AutomatonError):
            load(b"NOPE" + blob[4:])
        with pytest.raises(AutomatonError):
            load(blob[:20])
        with pytest.raises(AutomatonError):
            load(b"")


# -- the snapshot surface -----------------------------------------------------

MAP = """\
a b(3), c(5), .edu(9)
b c(2), caip.rutgers.edu(4)
caip.rutgers.edu .rutgers.edu(1), deep.sub.example.com(7)
c a(1), single(2)
"""


@pytest.fixture(scope="module")
def reader(tmp_path_factory):
    graph = Pathalias().build([("d.map", MAP)])
    out = tmp_path_factory.mktemp("fsm") / "fsm.snap"
    build_snapshot(graph, out)
    return SnapshotReader.open(out)


class TestSnapshotTableDifferential:
    def test_stored_block_serves_lookups(self, reader):
        table = reader.table("a")
        assert table.has_automaton
        assert table.flat_automaton() is not None

    @pytest.mark.parametrize("seed", range(3))
    def test_resolve_agrees_with_dict_walk(self, reader, seed):
        rng = random.Random(seed)
        for source in reader.sources():
            table = reader.table(source)
            targets = probe_targets(rng, table.record_names())
            for target in targets:
                try:
                    expect = table.resolve_with_cost_dict(target, "u")
                except RouteError as exc:
                    with pytest.raises(RouteError) as err:
                        table.resolve_with_cost(target, "u")
                    assert str(err.value) == str(exc)
                else:
                    assert table.resolve_with_cost(target, "u") \
                        == expect

    def test_v1_snapshot_lazily_compiles(self, tmp_path):
        graph = Pathalias().build([("d.map", MAP)])
        out = tmp_path / "v1.snap"
        build_snapshot(graph, out, fmt=1)
        table = SnapshotReader.open(out).table("a")
        assert not table.has_automaton
        assert table.dfsm_bytes() is None
        # ...but the automaton surface still answers, identically
        assert table.resolve_with_cost("b", "u") \
            == table.resolve_with_cost_dict("b", "u")
        with pytest.raises(RouteError):
            table.resolve_with_cost("nowhere.at.all", "u")


# -- the federation ownership surface -----------------------------------------

class TestFederationViewDifferential:
    @pytest.fixture(scope="class")
    def snaps(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("fed")
        east = "a b(1), .edu(4)\nb a(1)\n"
        west = "c d(2), .rutgers.edu(3)\nd c(2), a(9)\n"
        paths = {}
        for name, text in (("east", east), ("west", west)):
            graph = Pathalias().build([(f"{name}.map", text)])
            out = tmp / f"{name}.snap"
            build_snapshot(graph, out)
            paths[name] = out
        return paths

    def test_owners_of_fsm_equals_dict(self, snaps):
        fsm = FederationView(
            [Shard.open(n, p) for n, p in snaps.items()])
        oracle = FederationView(
            [Shard.open(n, p, dispatch="dict")
             for n, p in snaps.items()], dispatch="dict")
        assert fsm.dispatch == "fsm" and oracle.dispatch == "dict"
        targets = ["a", "b", "c", "d", "x.edu", "y.rutgers.edu",
                   "deep.x.rutgers.edu", "nowhere", ".edu", "edu",
                   "a.b.c.d", ""]
        for target in targets:
            assert fsm.owners_of(target) == oracle.owners_of(target), \
                f"owners_of({target!r}) diverged"

    def test_dispatch_survives_shard_swap(self, snaps):
        view = FederationView(
            [Shard.open(n, p) for n, p in snaps.items()])
        replaced = view._with_replaced(
            Shard.open("east", snaps["east"]))
        assert replaced.dispatch == view.dispatch
        assert replaced.owners_of("x.edu") == view.owners_of("x.edu")


# -- the in-memory mailer surface ---------------------------------------------

class TestRouteDatabaseDifferential:
    @pytest.mark.parametrize("seed", range(3))
    def test_resolve_agrees_with_walk(self, seed):
        rng = random.Random(1000 + seed)
        keys = random_key_set(rng, 25)
        db = RouteDatabase({k: f"{k}!%s" for k in keys},
                           costs={k: i for i, k in enumerate(keys)})
        for target in probe_targets(rng, keys):
            try:
                expect = db.resolve_with_cost_dict(target, "u")
            except RouteError:
                with pytest.raises(RouteError):
                    db.resolve_with_cost(target, "u")
            else:
                assert db.resolve_with_cost(target, "u") == expect


# -- incremental splice -------------------------------------------------------

class TestIncrementalSplice:
    def test_cost_only_update_reuses_dfsm_bytes(self, tmp_path):
        from repro.service.incremental import update_snapshot

        base = "a b(3), c(5)\nb c(2)\nc a(1)\n"
        revised = "a b(4), c(5)\nb c(2)\nc a(1)\n"
        old = tmp_path / "old.snap"
        new = tmp_path / "new.snap"
        build_snapshot(Pathalias().build([("d.map", base)]), old)
        reader = SnapshotReader.open(old)
        update_snapshot(reader, Pathalias().build(
            [("d.map", revised)]), new)
        old_r, new_r = SnapshotReader.open(old), SnapshotReader.open(new)
        for source in new_r.sources():
            assert new_r.table(source).dfsm_bytes() \
                == old_r.table(source).dfsm_bytes()
