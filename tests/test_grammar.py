"""Unit tests for the recursive-descent grammar."""

import pytest

from repro.errors import ParseError
from repro.parser.ast import (
    AdjustDecl,
    AliasDecl,
    DeadDecl,
    DeleteDecl,
    Direction,
    FileDecl,
    GatewayedDecl,
    HostDecl,
    NetDecl,
    PrivateDecl,
)
from repro.parser.grammar import parse_text


def one(text: str):
    decls = parse_text(text)
    assert len(decls) == 1
    return decls[0]


class TestHostDecl:
    def test_basic_links(self):
        decl = one("a b(10), c(20)")
        assert isinstance(decl, HostDecl)
        assert decl.name == "a"
        assert [(l.name, l.cost) for l in decl.links] == \
            [("b", 10), ("c", 20)]

    def test_default_operator_is_bang_left(self):
        decl = one("a b(10)")
        link = decl.links[0]
        assert link.op == "!"
        assert link.direction is Direction.LEFT

    def test_prefix_at_is_right(self):
        decl = one("a @b(10)")
        link = decl.links[0]
        assert link.op == "@"
        assert link.direction is Direction.RIGHT

    def test_postfix_bang_is_left_explicit(self):
        decl = one("a b!(10)")
        link = decl.links[0]
        assert link.op == "!"
        assert link.direction is Direction.LEFT

    def test_percent_and_colon_operators(self):
        decl = one("a %b(1), c:(2)")
        assert decl.links[0].op == "%"
        assert decl.links[0].direction is Direction.RIGHT
        assert decl.links[1].op == ":"
        assert decl.links[1].direction is Direction.LEFT

    def test_cost_optional(self):
        decl = one("a b")
        assert decl.links[0].cost is None

    def test_symbolic_cost_evaluated(self):
        decl = one("a b(HOURLY*4)")
        assert decl.links[0].cost == 2000

    def test_operator_on_both_sides_rejected(self):
        with pytest.raises(ParseError):
            parse_text("a @b!(10)")

    def test_multiline_continuation(self):
        decl = one("a b(10),\n\tc(20)")
        assert len(decl.links) == 2

    def test_source_coordinates(self):
        decls = parse_text("x y\na b(10)", filename="d.map")
        assert decls[1].filename == "d.map"
        assert decls[1].line == 2


class TestNetDecl:
    def test_plain_net(self):
        decl = one("UNC-dwarf = {dopey, grumpy, sleepy}(10)")
        assert isinstance(decl, NetDecl)
        assert decl.members == ("dopey", "grumpy", "sleepy")
        assert decl.cost == 10
        assert decl.op == "!"

    def test_arpa_style_net(self):
        decl = one("ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)")
        assert decl.op == "@"
        assert decl.direction is Direction.RIGHT
        assert decl.cost == 95

    def test_postfix_operator_net(self):
        decl = one("NET = {a, b}!(10)")
        assert decl.op == "!"
        assert decl.direction is Direction.LEFT

    def test_cost_optional(self):
        decl = one("NET = {a, b}")
        assert decl.cost is None

    def test_domain_net(self):
        decl = one(".edu = {.rutgers}")
        assert decl.name == ".edu"
        assert decl.members == (".rutgers",)

    def test_operator_both_sides_rejected(self):
        with pytest.raises(ParseError):
            parse_text("NET = @{a}!(10)")


class TestAliasDecl:
    def test_single_alias(self):
        decl = one("princeton = fun")
        assert isinstance(decl, AliasDecl)
        assert decl.aliases == ("fun",)

    def test_multiple_aliases(self):
        decl = one("nosc = noscvax, nosc-arpa")
        assert decl.aliases == ("noscvax", "nosc-arpa")

    def test_operator_without_braces_rejected(self):
        with pytest.raises(ParseError):
            parse_text("a = @b")


class TestKeywordDecls:
    def test_private(self):
        decl = one("private {bilbo, frodo}")
        assert isinstance(decl, PrivateDecl)
        assert decl.names == ("bilbo", "frodo")

    def test_gatewayed(self):
        decl = one("gatewayed {ARPA, CSNET}")
        assert isinstance(decl, GatewayedDecl)

    def test_dead_hosts_and_links(self):
        decl = one("dead {vortex, a!b, c@d}")
        assert isinstance(decl, DeadDecl)
        assert decl.hosts == ("vortex",)
        assert decl.links == (("a", "b"), ("c", "d"))

    def test_delete(self):
        decl = one("delete {x, y!z}")
        assert isinstance(decl, DeleteDecl)
        assert decl.hosts == ("x",)
        assert decl.links == (("y", "z"),)

    def test_adjust(self):
        decl = one("adjust {vortex(100), wheel(-50)}")
        assert isinstance(decl, AdjustDecl)
        assert decl.adjustments == (("vortex", 100), ("wheel", -50))

    def test_adjust_requires_cost(self):
        with pytest.raises(ParseError):
            parse_text("adjust {vortex}")

    def test_file(self):
        decl = one('file "d.region1"')
        assert isinstance(decl, FileDecl)
        assert decl.name == "d.region1"

    def test_keyword_only_at_statement_start(self):
        """A host may still link to a machine named like a keyword."""
        decl = one("a dead(10)")
        assert isinstance(decl, HostDecl)
        assert decl.links[0].name == "dead"


class TestCaseFolding:
    def test_fold_lower(self):
        decls = parse_text("Princeton TOPAZ(10)", case_fold=True)
        assert decls[0].name == "princeton"
        assert decls[0].links[0].name == "topaz"

    def test_no_fold_by_default(self):
        decls = parse_text("Princeton TOPAZ(10)")
        assert decls[0].name == "Princeton"


class TestErrors:
    def test_statement_must_start_with_name(self):
        with pytest.raises(ParseError):
            parse_text(", a b")

    def test_trailing_junk(self):
        with pytest.raises(ParseError):
            parse_text("a b(10) {")

    def test_unclosed_brace(self):
        with pytest.raises(ParseError):
            parse_text("NET = {a, b")

    def test_empty_input_ok(self):
        assert parse_text("") == []
        assert parse_text("# only comments\n\n") == []

    def test_multiple_statements(self):
        decls = parse_text("a b(1)\nc d(2)\nNET = {x, y}(3)")
        assert len(decls) == 3
