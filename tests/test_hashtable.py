"""Unit tests for the open-addressing double-hashing symbol table."""

import pytest

from repro.adt.hashtable import (
    ALPHA_HIGH,
    GrowthPolicy,
    HashTable,
    SecondaryHash,
    string_key,
)
from repro.adt.primes import is_prime


def names(count: int) -> list[str]:
    return [f"host{i:05d}" for i in range(count)]


class TestStringKey:
    def test_deterministic(self):
        assert string_key("princeton") == string_key("princeton")

    def test_non_negative(self):
        for name in ("", "a", "seismo", "x" * 100):
            assert string_key(name) >= 0

    def test_31_bit(self):
        assert string_key("q" * 1000) < 2 ** 31

    def test_distinguishes_similar_names(self):
        keys = {string_key(f"vax{i}") for i in range(100)}
        assert len(keys) == 100


class TestBasicOperations:
    def test_insert_and_lookup(self):
        table = HashTable()
        table.insert("duke", 1)
        table.insert("unc", 2)
        assert table.lookup("duke") == 1
        assert table.lookup("unc") == 2

    def test_missing_returns_default(self):
        table = HashTable()
        assert table.lookup("ghost") is None
        assert table.lookup("ghost", default=-1) == -1

    def test_overwrite(self):
        table = HashTable()
        table.insert("duke", 1)
        table.insert("duke", 9)
        assert table.lookup("duke") == 9
        assert len(table) == 1

    def test_contains_len(self):
        table = HashTable()
        assert "a" not in table
        table.insert("a", 0)
        assert "a" in table
        assert len(table) == 1

    def test_getitem_raises(self):
        table = HashTable()
        with pytest.raises(KeyError):
            table["nope"]

    def test_setitem(self):
        table = HashTable()
        table["x"] = 5
        assert table["x"] == 5

    def test_setdefault_interning(self):
        table = HashTable()
        first = table.setdefault("node", ["payload"])
        second = table.setdefault("node", ["other"])
        assert first is second

    def test_iteration_yields_all_names(self):
        table = HashTable()
        for name in names(100):
            table.insert(name, name.upper())
        assert sorted(table) == names(100)
        assert dict(table.items()) == {n: n.upper() for n in names(100)}

    def test_none_values_are_storable(self):
        table = HashTable()
        table.insert("n", None)
        assert "n" in table
        assert table["n"] is None


class TestGrowth:
    def test_grows_past_high_water(self):
        table = HashTable(initial_size=31)
        for name in names(500):
            table.insert(name, 0)
        assert len(table) == 500
        assert table.load_factor <= ALPHA_HIGH + 1e-9
        assert table.rehashes > 0

    def test_size_always_prime(self):
        for policy in GrowthPolicy:
            table = HashTable(initial_size=31, growth=policy)
            for name in names(400):
                table.insert(name, 0)
            assert is_prime(table.size)

    def test_contents_survive_rehash(self):
        table = HashTable(initial_size=5)
        expected = {}
        for i, name in enumerate(names(300)):
            table.insert(name, i)
            expected[name] = i
        assert dict(table.items()) == expected

    def test_doubling_reaches_bigger_tables(self):
        doubling = HashTable(initial_size=31,
                             growth=GrowthPolicy.DOUBLING)
        fib = HashTable(initial_size=31, growth=GrowthPolicy.FIBONACCI)
        for name in names(700):
            doubling.insert(name, 0)
            fib.insert(name, 0)
        # Doubling overshoots: the paper's space-waste complaint.
        assert doubling.size >= fib.size

    def test_arithmetic_targets_low_water(self):
        table = HashTable(initial_size=31,
                          growth=GrowthPolicy.ARITHMETIC)
        for name in names(200):
            table.insert(name, 0)
        assert table.load_factor < ALPHA_HIGH

    def test_retired_slots_accounted(self):
        table = HashTable(initial_size=31)
        for name in names(300):
            table.insert(name, 0)
        assert table.retired_slots > 0


class TestProbeBehaviour:
    def test_mean_probes_near_two_at_high_load(self):
        """Gonnet's prediction the paper cites: ~2 probes per access
        when the table is full (alpha = 0.79)."""
        table = HashTable(initial_size=1009)
        # Fill to just under the high-water mark without growing.
        count = int(1009 * ALPHA_HIGH) - 1
        for name in names(count):
            table.insert(name, 0)
        assert table.size == 1009
        table.reset_stats()
        for name in names(count):
            assert table.lookup(name) == 0
        assert 1.0 < table.mean_probes() < 3.0

    def test_secondary_hash_variants_agree_on_contents(self):
        data = names(300)
        tables = [HashTable(secondary=s) for s in SecondaryHash]
        for table in tables:
            for name in data:
                table.insert(name, name)
            assert sorted(table) == sorted(data)

    def test_stats_reset(self):
        table = HashTable()
        table.insert("a", 1)
        table.reset_stats()
        assert table.probes == 0
        assert table.accesses == 0
