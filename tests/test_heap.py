"""Unit tests for the implicit binary heap with decrease-key."""

import pytest

from repro.adt.heap import BinaryHeap


class TestBasics:
    def test_insert_extract_sorted(self):
        heap = BinaryHeap()
        for value in (5, 3, 8, 1, 9, 2):
            heap.insert(f"n{value}", value)
        out = []
        while heap:
            item, priority = heap.extract_min()
            out.append(priority)
        assert out == sorted(out)

    def test_len_and_bool(self):
        heap = BinaryHeap()
        assert not heap
        heap.insert("a", 1)
        assert heap
        assert len(heap) == 1

    def test_contains(self):
        heap = BinaryHeap()
        heap.insert("a", 1)
        assert "a" in heap
        assert "b" not in heap
        heap.extract_min()
        assert "a" not in heap

    def test_peek_does_not_remove(self):
        heap = BinaryHeap()
        heap.insert("a", 2)
        heap.insert("b", 1)
        assert heap.peek() == ("b", 1)
        assert len(heap) == 2

    def test_extract_empty_raises(self):
        with pytest.raises(IndexError):
            BinaryHeap().extract_min()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            BinaryHeap().peek()

    def test_duplicate_insert_rejected(self):
        heap = BinaryHeap()
        heap.insert("a", 1)
        with pytest.raises(ValueError):
            heap.insert("a", 2)

    def test_priority_query(self):
        heap = BinaryHeap()
        heap.insert("a", 7)
        assert heap.priority("a") == 7


class TestDecreaseKey:
    def test_decrease_moves_to_front(self):
        heap = BinaryHeap()
        heap.insert("slow", 100)
        heap.insert("fast", 1)
        heap.decrease_key("slow", 0)
        assert heap.extract_min() == ("slow", 0)

    def test_increase_rejected(self):
        heap = BinaryHeap()
        heap.insert("a", 5)
        with pytest.raises(ValueError):
            heap.decrease_key("a", 10)

    def test_equal_priority_allowed(self):
        heap = BinaryHeap()
        heap.insert("a", 5)
        heap.decrease_key("a", 5)
        assert heap.priority("a") == 5

    def test_decrease_missing_raises(self):
        heap = BinaryHeap()
        with pytest.raises(KeyError):
            heap.decrease_key("ghost", 1)

    def test_interleaved_operations(self):
        heap = BinaryHeap()
        for i in range(50):
            heap.insert(i, 1000 + i)
        for i in range(0, 50, 2):
            heap.decrease_key(i, i)
        heap.check_invariant()
        first = [heap.extract_min()[0] for _ in range(25)]
        assert first == list(range(0, 50, 2))


class TestDeterminism:
    def test_fifo_tie_break(self):
        """Equal priorities extract in insertion order — route output
        must be reproducible."""
        heap = BinaryHeap()
        for name in ("first", "second", "third"):
            heap.insert(name, 7)
        order = [heap.extract_min()[0] for _ in range(3)]
        assert order == ["first", "second", "third"]

    def test_tie_break_survives_decrease(self):
        heap = BinaryHeap()
        heap.insert("early", 9)
        heap.insert("late", 9)
        heap.insert("dropped", 20)
        heap.decrease_key("dropped", 9)
        order = [heap.extract_min()[0] for _ in range(3)]
        # "dropped" keeps its (late) serial: stays behind the others.
        assert order == ["early", "late", "dropped"]

    def test_invariant_checker_catches_corruption(self):
        heap = BinaryHeap()
        for i in range(10):
            heap.insert(i, i)
        heap._heap[0][0] = 99  # corrupt on purpose
        with pytest.raises(AssertionError):
            heap.check_invariant()
