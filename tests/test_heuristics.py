"""Tests for the cost-calculation heuristics (Cost calculation section)."""

import pytest

from repro.config import DEAD, HeuristicConfig, INF
from repro.core.mapper import Mapper
from repro.graph.build import build_graph
from repro.parser.grammar import parse_text


def run(text: str, source: str, **cfg):
    graph = build_graph([("d.map", parse_text(text))])
    return Mapper(graph, HeuristicConfig(**cfg)).run(source)


class TestMixedSyntax:
    def test_bang_then_at_unpenalized(self):
        """The paper's own example output shows ...!%s@host with no
        penalty: the trailing-@ form is the accepted mixed route."""
        result = run("a b(10)\nb @c(20)", "a")
        assert result.cost("c") == 30

    def test_at_then_bang_penalized(self):
        """user@relay!x is the ambiguous direction: a bang-rigid mailer
        routes it wrong, so the mapper charges for it."""
        result = run("a @b(10)\nb c(20)", "a", mixed_penalty=1000)
        assert result.cost("c") == 10 + 20 + 1000

    def test_penalty_steers_route_choice(self):
        # Two routes to d: cheap one mixes @ then !, expensive is pure.
        text = ("a @b(10), x(200)\n"
                "b d(10)\n"
                "x d(200)")
        penalized = run(text, "a", mixed_penalty=10000)
        d_label = penalized.best(penalized.graph.require("d"))
        assert d_label.parent.node.name == "x"
        unpenalized = run(text, "a", mixed_penalty=0)
        d_label = unpenalized.best(unpenalized.graph.require("d"))
        assert d_label.parent.node.name == "b"

    def test_penalty_counted_in_stats(self):
        result = run("a @b(10)\nb c(20)", "a", mixed_penalty=1000)
        assert result.stats.mixed_penalties == 1

    def test_pure_bang_paths_never_penalized(self):
        result = run("a b(1)\nb c(1)\nc d(1)", "a", mixed_penalty=10000)
        assert result.cost("d") == 3


class TestGatewayedNets:
    MAP = ("gatewayed {NET}\n"
           "NET = {member, other}(10)\n"
           "src member(5), gw(50)\n"
           "gw NET(10)\n")

    def test_entry_via_member_penalized(self):
        result = run(self.MAP, "src", gateway_penalty=100000)
        # via member: 5 + 10 + penalty; via gw: 50 + 10. The gateway
        # route wins.
        assert result.cost("other") == 60

    def test_entry_via_gateway_clean(self):
        result = run(self.MAP, "src")
        other = result.best(result.graph.require("other"))
        assert other.parent.node.name == "NET"
        net_label = other.parent
        assert net_label.parent.node.name == "gw"

    def test_penalty_ablation_restores_member_entry(self):
        result = run(self.MAP, "src", gateway_penalty=0)
        assert result.cost("other") == 15  # 5 + 10 + 0

    def test_ungatewayed_net_unaffected(self):
        result = run("NET = {member, other}(10)\nsrc member(5)", "src",
                     gateway_penalty=100000)
        assert result.cost("other") == 15


class TestDomains:
    def test_domains_gatewayed_by_definition(self):
        graph = build_graph([("f", parse_text(".edu = {campus}"))])
        assert graph.require(".edu").gatewayed

    def test_member_may_enter_own_domain(self):
        """Declaring caip under .rutgers.edu makes caip a gateway for
        it — members inject mail without penalty."""
        result = run("src caip(10)\n.rutgers.edu = {caip, blue}", "src")
        assert result.cost("blue") == 10

    def test_relay_through_domain_penalized(self):
        """Once a path enters a domain, further real links pay the
        ARPANET relay restriction."""
        result = run("src caip(10)\n.rutgers.edu = {caip, blue}\n"
                     "blue outside(10)", "src")
        assert result.cost("outside") >= INF

    def test_subdomain_to_parent_essentially_infinite(self):
        """Prevents caip!seismo.css.gov.edu.rutgers absurdities."""
        result = run("src caip(10)\n"
                     ".rutgers = {caip}\n"
                     ".edu = {.rutgers}\n"
                     ".edu elsewhere(10)", "src")
        # Path src -> caip -> .rutgers -> .edu must pay the up-penalty.
        assert result.cost(".edu") >= INF

    def test_parent_domain_gateways_children(self):
        """Down the domain tree is free: the parent is the gateway."""
        result = run("seismo .edu(95)\n"
                     ".edu = {.rutgers}\n"
                     ".rutgers = {caip}\n"
                     "src seismo(100)", "src")
        assert result.cost("caip") == 195

    def test_domain_penalty_stat(self):
        result = run("src caip(10)\n.rutgers.edu = {caip, blue}\n"
                     "blue outside(10)", "src")
        assert result.stats.domain_penalties >= 1


class TestDeadCosts:
    def test_dead_link_used_as_last_resort(self):
        result = run("a b(10)\ndead {a!b}", "a")
        assert result.cost("b") >= DEAD

    def test_alive_path_preferred_over_dead(self):
        result = run("a b(10), c(10)\nc b(10)\ndead {a!b}", "a")
        b = result.best(result.graph.require("b"))
        assert b.parent.node.name == "c"
        assert result.cost("b") == 20


class TestConfigValidation:
    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            HeuristicConfig(mixed_penalty=-1).validate()

    def test_zero_back_link_factor_rejected(self):
        with pytest.raises(ValueError):
            HeuristicConfig(back_link_factor=0).validate()
