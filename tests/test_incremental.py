"""Diff-driven snapshot updates: affected-set precision and the
byte-identity guarantee."""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.config import HeuristicConfig
from repro.core.pathalias import Pathalias
from repro.graph.compact import CompactGraph, K_NORMAL
from repro.service.incremental import (
    affected_sources,
    affected_sources_exact,
    compact_link_costs,
    diff_compact_graphs,
    update_snapshot,
)
from repro.service.store import SnapshotReader, build_snapshot

#: a: close to b, far from c.  b: bridges a and c.  d: pendant on c.
#: Every source's tree crosses the cheap b<->c bridge; the expensive
#: direct a->c link is relaxed but never used.
DIAMOND = """\
a\tb(10), c(100)
b\ta(10), c(10)
c\tb(10), a(100), d(10)
d\tc(10)
"""

DATA = Path(__file__).parent / "data"


def build(text, name="d.map"):
    return Pathalias().build([(name, text)])


def snap(graph, path, **kwargs):
    return build_snapshot(graph, path, **kwargs)


def assert_identical_to_full_rebuild(out: Path, new_graph, cfg=None,
                                     fmt=2):
    reference = out.parent / (out.name + ".reference")
    build_snapshot(new_graph, reference, heuristics=cfg, fmt=fmt)
    assert out.read_bytes() == reference.read_bytes()


def repriced(cg: CompactGraph, j: int, delta: int) -> CompactGraph:
    """A detached clone of ``cg`` with one link cost changed — the
    array-level way to synthesize a pure cost revision."""
    clone = pickle.loads(pickle.dumps(cg))
    clone.cost[j] += delta
    return clone


class TestAffectedSet:
    def test_cost_increase_remaps_only_tree_users(self, tmp_path):
        """Raising b->c can only matter to sources whose shortest-path
        tree crosses b->c: a and b.  c and d route the other way and
        must be spliced from the old snapshot untouched."""
        old = tmp_path / "old.snap"
        snap(build(DIAMOND), old)
        revised = build(DIAMOND.replace("b\ta(10), c(10)",
                                        "b\ta(10), c(500)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out)
        assert report.mode == "incremental"
        assert report.remapped == ["a", "b"]
        assert report.reused == 2
        assert report.total_sources == 4
        assert_identical_to_full_rebuild(out, revised)

    def test_cost_decrease_uses_triangle_test(self, tmp_path):
        """Cheapening the unused a->c link to 15 only helps a
        (0 + 15 < 20); for b, c, d the triangle test proves the old
        routes still win."""
        old = tmp_path / "old.snap"
        snap(build(DIAMOND), old)
        revised = build(DIAMOND.replace("a\tb(10), c(100)",
                                        "a\tb(10), c(15)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out)
        assert report.mode == "incremental"
        assert report.remapped == ["a"]
        assert report.reused == 3
        assert_identical_to_full_rebuild(out, revised)

    def test_untouched_cost_change_remaps_nobody(self, tmp_path):
        """An increase on a link no tree uses reuses every section."""
        old = tmp_path / "old.snap"
        snap(build(DIAMOND), old)
        revised = build(DIAMOND.replace("c\tb(10), a(100), d(10)",
                                        "c\tb(10), a(150), d(10)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out)
        assert report.mode == "incremental"
        assert report.remapped == []
        assert report.reused == 4
        assert_identical_to_full_rebuild(out, revised)

    def test_cost_decrease_tie_counts_as_affected(self, tmp_path):
        """An exact-cost tie through the cheapened link can steal the
        label by relaxation order and change the route *text* at the
        same cost, so the triangle test must treat ties as affected.

        Here s reaches v for 10 via a; dropping u->v from 7 to 6 makes
        u's path also cost 10, and u pops first, so a fresh rebuild
        routes s's mail via u."""
        tie_map = ("s\ta(5), u(4)\n"
                   "a\ts(5), v(5)\n"
                   "u\ts(4), v(7)\n"
                   "v\ta(5), u(7)\n")
        old = tmp_path / "old.snap"
        snap(build(tie_map), old)
        assert SnapshotReader.open(old).table("s").route("v") == \
            "a!v!%s"
        revised = build(tie_map.replace("u\ts(4), v(7)",
                                        "u\ts(4), v(6)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out,
                                 full_threshold=1.0)
        assert "s" in report.remapped
        assert SnapshotReader.open(out).table("s").route("v") == \
            "u!v!%s"
        assert_identical_to_full_rebuild(out, revised)

    def test_affected_sources_directly(self, tmp_path):
        old = tmp_path / "old.snap"
        snap(build(DIAMOND), old)
        reader = SnapshotReader.open(old)
        from repro.graph.compact import CompactGraph

        new_cg = CompactGraph.compile(
            build(DIAMOND.replace("b\ta(10), c(10)",
                                  "b\ta(10), c(500)")))
        changed = [j for j in range(new_cg.link_count)
                   if new_cg.cost[j] != reader.decode_graph().cost[j]]
        assert len(changed) == 1
        assert affected_sources(reader, new_cg, changed) == ["a", "b"]


class TestFullFallbacks:
    def make_old(self, tmp_path, text=DIAMOND, **kwargs):
        old = tmp_path / "old.snap"
        snap(build(text), old, **kwargs)
        return old

    def test_host_added_forces_full(self, tmp_path):
        old = self.make_old(tmp_path)
        revised = build(DIAMOND + "e\td(10)\n")
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out)
        assert report.mode == "full"
        assert report.reason == "topology changed"
        assert "e" in report.diff.hosts_added
        assert_identical_to_full_rebuild(out, revised)

    def test_link_removed_forces_full(self, tmp_path):
        old = self.make_old(tmp_path)
        revised = build(DIAMOND.replace("c\tb(10), a(100), d(10)",
                                        "c\tb(10), d(10)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out)
        assert report.mode == "full"
        assert ("c", "a") in report.diff.links_removed
        assert_identical_to_full_rebuild(out, revised)

    def test_threshold_zero_forces_full(self, tmp_path):
        old = self.make_old(tmp_path)
        revised = build(DIAMOND.replace("b\ta(10), c(10)",
                                        "b\ta(10), c(500)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out,
                                 full_threshold=0.0)
        assert report.mode == "full"
        assert "threshold" in report.reason
        assert_identical_to_full_rebuild(out, revised)

    def test_second_best_v1_snapshot_forces_full(self, tmp_path):
        """A v1 snapshot stores no per-state costs, so the historical
        conservative fallback remains for it."""
        cfg = HeuristicConfig(second_best=True)
        old = self.make_old(tmp_path, heuristics=cfg, fmt=1)
        revised = build(DIAMOND.replace("b\ta(10), c(10)",
                                        "b\ta(10), c(500)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out)
        assert report.mode == "full"
        assert "second-best" in report.reason
        assert_identical_to_full_rebuild(out, revised, cfg=cfg, fmt=1)

    def test_net_touching_v1_snapshot_forces_full(self, tmp_path):
        """Same v1 restriction for a cheaper link whose endpoint is a
        structural placeholder."""
        text = DIAMOND + "NET = {a, b}(50)\nn2\ta(40), NET(60)\n"
        old = self.make_old(tmp_path, text=text, fmt=1)
        revised = build(text.replace("NET(60)", "NET(30)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out)
        assert report.mode == "full"
        assert "net, domain, private" in report.reason
        assert_identical_to_full_rebuild(out, revised, fmt=1)

    def test_format_change_forces_full(self, tmp_path):
        old = self.make_old(tmp_path, fmt=1)
        out = tmp_path / "new.snap"
        report = update_snapshot(old, build(DIAMOND), out, fmt=2)
        assert report.mode == "full"
        assert "format change" in report.reason
        assert report.format == 2
        assert SnapshotReader.open(out).version == 2
        assert_identical_to_full_rebuild(out, build(DIAMOND), fmt=2)

    def test_update_preserves_stored_heuristics(self, tmp_path):
        cfg = HeuristicConfig(back_link_factor=2)
        old = self.make_old(tmp_path, heuristics=cfg)
        revised = build(DIAMOND.replace("b\ta(10), c(10)",
                                        "b\ta(10), c(500)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out)
        assert report.heuristics == cfg
        assert SnapshotReader.open(out).heuristics() == cfg
        assert_identical_to_full_rebuild(out, revised, cfg=cfg)

    def test_identical_map_reuses_everything(self, tmp_path):
        old = self.make_old(tmp_path)
        out = tmp_path / "new.snap"
        report = update_snapshot(old, build(DIAMOND), out)
        assert report.mode == "incremental"
        assert report.remapped == []
        assert report.diff.is_empty
        assert out.read_bytes() == old.read_bytes()


#: p is private (file-scoped); NET is a placeholder; .dom a domain.
#: All three have NORMAL links whose costs can change — exactly the
#: revisions a v1 snapshot had to remap fully.
STRUCTURED = """\
private {p}
a\tb(10), p(20), NET(40), .dom(90)
p\tc(30)
b\ta(10), c(10)
c\tb(10), d(10)
d\tc(10)
NET = {b, d}(50)
.dom = {c}
"""


class TestExactAffectedV2:
    """The tentpole: with stored per-state costs the triangle test
    runs on exact numbers, so second-best snapshots and revisions
    touching nets, domains, or private nodes update incrementally —
    and stay byte-identical to a from-scratch v2 build."""

    def updated(self, tmp_path, text, old_text=None, cfg=None,
                **kwargs):
        old = tmp_path / "old.snap"
        snap(build(old_text or text), old, heuristics=cfg)
        revised = build(text) if old_text else None
        return old, revised

    def test_private_touching_decrease_incremental(self, tmp_path):
        old = tmp_path / "old.snap"
        snap(build(STRUCTURED), old)
        revised = build(STRUCTURED.replace("p\tc(30)", "p\tc(5)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out,
                                 full_threshold=1.0)
        assert report.mode == "incremental"
        assert_identical_to_full_rebuild(out, revised)

    def test_net_touching_decrease_incremental(self, tmp_path):
        old = tmp_path / "old.snap"
        snap(build(STRUCTURED), old)
        revised = build(STRUCTURED.replace("NET(40)", "NET(15)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out,
                                 full_threshold=1.0)
        assert report.mode == "incremental"
        assert_identical_to_full_rebuild(out, revised)

    def test_domain_touching_decrease_incremental(self, tmp_path):
        old = tmp_path / "old.snap"
        snap(build(STRUCTURED), old)
        revised = build(STRUCTURED.replace(".dom(90)", ".dom(35)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out,
                                 full_threshold=1.0)
        assert report.mode == "incremental"
        assert_identical_to_full_rebuild(out, revised)

    def test_second_best_update_incremental(self, tmp_path):
        cfg = HeuristicConfig(second_best=True)
        old = tmp_path / "old.snap"
        snap(build(STRUCTURED), old, heuristics=cfg)
        revised = build(STRUCTURED.replace("b\ta(10), c(10)",
                                           "b\ta(10), c(500)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out,
                                 full_threshold=1.0)
        assert report.mode == "incremental"
        assert_identical_to_full_rebuild(out, revised, cfg=cfg)

    def test_unaffected_sources_splice_verbatim(self, tmp_path):
        """A private-link increase only remaps the sources whose tree
        used it; the rest splice from the old file."""
        old = tmp_path / "old.snap"
        snap(build(STRUCTURED), old)
        revised = build(STRUCTURED.replace("p\tc(30)", "p\tc(90)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out,
                                 full_threshold=1.0)
        assert report.mode == "incremental"
        assert report.reused > 0
        assert_identical_to_full_rebuild(out, revised)

    def test_exact_analysis_tighter_than_v1(self, tmp_path):
        """The same revision that forces a v1 full rebuild updates a
        v2 snapshot incrementally — the open item this PR closes."""
        v1, v2 = tmp_path / "v1.snap", tmp_path / "v2.snap"
        snap(build(STRUCTURED), v1, fmt=1)
        snap(build(STRUCTURED), v2)
        revised = build(STRUCTURED.replace("NET(40)", "NET(15)"))
        full = update_snapshot(v1, revised, tmp_path / "o1.snap",
                               full_threshold=1.0)
        incremental = update_snapshot(v2, revised,
                                      tmp_path / "o2.snap",
                                      full_threshold=1.0)
        assert full.mode == "full"
        assert incremental.mode == "incremental"

    def test_affected_sources_exact_directly(self, tmp_path):
        old = tmp_path / "old.snap"
        snap(build(DIAMOND), old)
        reader = SnapshotReader.open(old)
        new_cg = CompactGraph.compile(
            build(DIAMOND.replace("b\ta(10), c(10)",
                                  "b\ta(10), c(500)")))
        changed = [j for j in range(new_cg.link_count)
                   if new_cg.cost[j] != reader.decode_graph().cost[j]]
        assert affected_sources_exact(reader, new_cg, changed) == \
            affected_sources(reader, new_cg, changed) == ["a", "b"]

    def test_negative_cost_returns_none(self, tmp_path):
        """Negative costs void Dijkstra's preconditions: the exact
        analysis refuses (None) so update_snapshot rebuilds fully."""
        old = tmp_path / "old.snap"
        snap(build(DIAMOND), old)
        reader = SnapshotReader.open(old)
        cg = CompactGraph.compile(build(DIAMOND))
        j = next(j for j in range(cg.link_count)
                 if cg.kind[j] == K_NORMAL)
        revised = repriced(cg, j, -(cg.cost[j] + 5))
        assert affected_sources_exact(reader, revised, [j]) is None
        assert affected_sources(reader, revised, [j]) is None


class TestNegativeCostRevisionV2:
    """Negative link costs on a v2 snapshot: the documented
    full-rebuild path, taken loudly and byte-identically."""

    def negative_revision(self):
        cg = CompactGraph.compile(build(DIAMOND))
        j = next(j for j in range(cg.link_count)
                 if cg.kind[j] == K_NORMAL)
        return cg, repriced(cg, j, -(cg.cost[j] + 5))

    def test_update_takes_full_rebuild_path(self, tmp_path):
        old = tmp_path / "old.snap"
        cg, revised = self.negative_revision()
        snap(cg, old)
        out = tmp_path / "out.snap"
        report = update_snapshot(old, revised, out)
        assert report.mode == "full"
        assert "negative link cost" in report.reason
        assert report.format == 2
        assert report.reused == 0
        assert len(report.remapped) == report.total_sources

    def test_output_byte_identical_to_scratch_build(self, tmp_path,
                                                    capsys):
        """The rebuild enforces the graph model's non-negative-weight
        rule exactly like a scratch build does (same clamp, same
        stderr warning), so the bytes still match."""
        old = tmp_path / "old.snap"
        cg, revised = self.negative_revision()
        snap(cg, old)
        out = tmp_path / "out.snap"
        update_snapshot(old, revised, out)
        err = capsys.readouterr().err
        assert "negative link cost(s) clamped to 0" in err
        assert_identical_to_full_rebuild(out, revised)
        # the clamped graph is what the snapshot stores: reopening it
        # keeps the non-negative invariant for future updates
        assert min(SnapshotReader.open(out).decode_graph().cost) >= 0

    def test_fallback_is_said_not_silent(self, tmp_path):
        """The summary line `pathalias update` prints on stderr names
        the fallback mode and its reason — no silent mode switch.
        (The CLI's stderr plumbing itself is covered in
        ``tests/test_cli.py``.)"""
        old = tmp_path / "old.snap"
        cg, revised = self.negative_revision()
        snap(cg, old)
        report = update_snapshot(old, revised, tmp_path / "out.snap")
        summary = report.summary()
        assert summary.startswith("full update (negative link cost)")
        assert "0 reused" in summary


def structural_candidates(cg: CompactGraph) -> list[int]:
    """NORMAL link ids touching a net, domain, or private node —
    preferred revision targets (they exercised the v1 fallback) —
    falling back to any NORMAL link."""
    touching = [j for j in range(cg.link_count)
                if cg.kind[j] == K_NORMAL and cg.cost[j] > 8
                and (cg.netlike[_owner(cg, j)] or
                     cg.private[_owner(cg, j)] or
                     cg.netlike[cg.to[j]] or cg.private[cg.to[j]])]
    if touching:
        return touching[:3]
    return [j for j in range(cg.link_count)
            if cg.kind[j] == K_NORMAL and cg.cost[j] > 8][:3]


def _owner(cg: CompactGraph, j: int) -> int:
    from repro.service.incremental import _link_owner

    return _link_owner(cg, j)


class TestFixtureSuiteV2:
    """The acceptance bar on the real regional maps: every synthetic
    cost revision — including ones touching nets, domains, and
    private nodes, and including second-best snapshots — updates
    incrementally and lands byte-identical to a from-scratch build."""

    @pytest.mark.parametrize("path", sorted(DATA.glob("d.*")),
                             ids=lambda p: p.name)
    @pytest.mark.parametrize("second", [False, True],
                             ids=["tree", "second-best"])
    @pytest.mark.parametrize("delta", [7, -7],
                             ids=["increase", "decrease"])
    def test_no_fallback_and_byte_identical(self, tmp_path, path,
                                            second, delta):
        cfg = HeuristicConfig(second_best=second)
        graph = Pathalias(heuristics=cfg).build(
            [(path.name, path.read_text())])
        cg = CompactGraph.compile(graph)
        old = tmp_path / "old.snap"
        snap(cg, old, heuristics=cfg)
        reader = SnapshotReader.open(old)
        for j in structural_candidates(cg):
            revised = repriced(cg, j, delta)
            out = tmp_path / "new.snap"
            report = update_snapshot(reader, revised, out,
                                     full_threshold=1.0)
            assert report.mode == "incremental", report.reason
            reference = tmp_path / "ref.snap"
            build_snapshot(revised, reference, heuristics=cfg)
            assert out.read_bytes() == reference.read_bytes()


class TestRealMaps:
    @pytest.mark.parametrize("path", sorted(DATA.glob("d.*")),
                             ids=lambda p: p.name)
    def test_no_change_round_trip(self, tmp_path, path):
        graph = Pathalias().build([(path.name, path.read_text())])
        old = tmp_path / "old.snap"
        snap(graph, old)
        again = Pathalias().build([(path.name, path.read_text())])
        out = tmp_path / "new.snap"
        report = update_snapshot(old, again, out)
        assert report.mode == "incremental"
        assert report.remapped == []
        assert out.read_bytes() == old.read_bytes()


class TestCompactDiffHelpers:
    def test_compact_link_costs_match_mapdiff(self):
        from repro.graph.compact import CompactGraph
        from repro.netsim.mapdiff import _link_costs

        graph = build(DIAMOND)
        cg = CompactGraph.compile(graph)
        assert compact_link_costs(cg) == _link_costs(graph)

    def test_diff_compact_graphs_matches_diff_graphs(self):
        from repro.graph.compact import CompactGraph
        from repro.netsim.mapdiff import diff_graphs

        old = build(DIAMOND)
        new = build(DIAMOND.replace("b\ta(10), c(10)",
                                    "b\ta(10), c(500)") + "e\td(5)\n")
        got = diff_compact_graphs(CompactGraph.compile(old),
                                  CompactGraph.compile(new))
        want = diff_graphs(old, new)
        assert got.hosts_added == want.hosts_added
        assert got.links_added == want.links_added
        assert got.cost_changes == want.cost_changes
