"""Diff-driven snapshot updates: affected-set precision and the
byte-identity guarantee."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import HeuristicConfig
from repro.core.pathalias import Pathalias
from repro.service.incremental import (
    affected_sources,
    compact_link_costs,
    diff_compact_graphs,
    update_snapshot,
)
from repro.service.store import SnapshotReader, build_snapshot

#: a: close to b, far from c.  b: bridges a and c.  d: pendant on c.
#: Every source's tree crosses the cheap b<->c bridge; the expensive
#: direct a->c link is relaxed but never used.
DIAMOND = """\
a\tb(10), c(100)
b\ta(10), c(10)
c\tb(10), a(100), d(10)
d\tc(10)
"""

DATA = Path(__file__).parent / "data"


def build(text, name="d.map"):
    return Pathalias().build([(name, text)])


def snap(graph, path, **kwargs):
    return build_snapshot(graph, path, **kwargs)


def assert_identical_to_full_rebuild(out: Path, new_graph, cfg=None):
    reference = out.parent / (out.name + ".reference")
    build_snapshot(new_graph, reference, heuristics=cfg)
    assert out.read_bytes() == reference.read_bytes()


class TestAffectedSet:
    def test_cost_increase_remaps_only_tree_users(self, tmp_path):
        """Raising b->c can only matter to sources whose shortest-path
        tree crosses b->c: a and b.  c and d route the other way and
        must be spliced from the old snapshot untouched."""
        old = tmp_path / "old.snap"
        snap(build(DIAMOND), old)
        revised = build(DIAMOND.replace("b\ta(10), c(10)",
                                        "b\ta(10), c(500)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out)
        assert report.mode == "incremental"
        assert report.remapped == ["a", "b"]
        assert report.reused == 2
        assert report.total_sources == 4
        assert_identical_to_full_rebuild(out, revised)

    def test_cost_decrease_uses_triangle_test(self, tmp_path):
        """Cheapening the unused a->c link to 15 only helps a
        (0 + 15 < 20); for b, c, d the triangle test proves the old
        routes still win."""
        old = tmp_path / "old.snap"
        snap(build(DIAMOND), old)
        revised = build(DIAMOND.replace("a\tb(10), c(100)",
                                        "a\tb(10), c(15)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out)
        assert report.mode == "incremental"
        assert report.remapped == ["a"]
        assert report.reused == 3
        assert_identical_to_full_rebuild(out, revised)

    def test_untouched_cost_change_remaps_nobody(self, tmp_path):
        """An increase on a link no tree uses reuses every section."""
        old = tmp_path / "old.snap"
        snap(build(DIAMOND), old)
        revised = build(DIAMOND.replace("c\tb(10), a(100), d(10)",
                                        "c\tb(10), a(150), d(10)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out)
        assert report.mode == "incremental"
        assert report.remapped == []
        assert report.reused == 4
        assert_identical_to_full_rebuild(out, revised)

    def test_cost_decrease_tie_counts_as_affected(self, tmp_path):
        """An exact-cost tie through the cheapened link can steal the
        label by relaxation order and change the route *text* at the
        same cost, so the triangle test must treat ties as affected.

        Here s reaches v for 10 via a; dropping u->v from 7 to 6 makes
        u's path also cost 10, and u pops first, so a fresh rebuild
        routes s's mail via u."""
        tie_map = ("s\ta(5), u(4)\n"
                   "a\ts(5), v(5)\n"
                   "u\ts(4), v(7)\n"
                   "v\ta(5), u(7)\n")
        old = tmp_path / "old.snap"
        snap(build(tie_map), old)
        assert SnapshotReader.open(old).table("s").route("v") == \
            "a!v!%s"
        revised = build(tie_map.replace("u\ts(4), v(7)",
                                        "u\ts(4), v(6)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out,
                                 full_threshold=1.0)
        assert "s" in report.remapped
        assert SnapshotReader.open(out).table("s").route("v") == \
            "u!v!%s"
        assert_identical_to_full_rebuild(out, revised)

    def test_affected_sources_directly(self, tmp_path):
        old = tmp_path / "old.snap"
        snap(build(DIAMOND), old)
        reader = SnapshotReader.open(old)
        from repro.graph.compact import CompactGraph

        new_cg = CompactGraph.compile(
            build(DIAMOND.replace("b\ta(10), c(10)",
                                  "b\ta(10), c(500)")))
        changed = [j for j in range(new_cg.link_count)
                   if new_cg.cost[j] != reader.decode_graph().cost[j]]
        assert len(changed) == 1
        assert affected_sources(reader, new_cg, changed) == ["a", "b"]


class TestFullFallbacks:
    def make_old(self, tmp_path, text=DIAMOND, **kwargs):
        old = tmp_path / "old.snap"
        snap(build(text), old, **kwargs)
        return old

    def test_host_added_forces_full(self, tmp_path):
        old = self.make_old(tmp_path)
        revised = build(DIAMOND + "e\td(10)\n")
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out)
        assert report.mode == "full"
        assert report.reason == "topology changed"
        assert "e" in report.diff.hosts_added
        assert_identical_to_full_rebuild(out, revised)

    def test_link_removed_forces_full(self, tmp_path):
        old = self.make_old(tmp_path)
        revised = build(DIAMOND.replace("c\tb(10), a(100), d(10)",
                                        "c\tb(10), d(10)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out)
        assert report.mode == "full"
        assert ("c", "a") in report.diff.links_removed
        assert_identical_to_full_rebuild(out, revised)

    def test_threshold_zero_forces_full(self, tmp_path):
        old = self.make_old(tmp_path)
        revised = build(DIAMOND.replace("b\ta(10), c(10)",
                                        "b\ta(10), c(500)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out,
                                 full_threshold=0.0)
        assert report.mode == "full"
        assert "threshold" in report.reason
        assert_identical_to_full_rebuild(out, revised)

    def test_second_best_snapshot_forces_full(self, tmp_path):
        cfg = HeuristicConfig(second_best=True)
        old = self.make_old(tmp_path, heuristics=cfg)
        revised = build(DIAMOND.replace("b\ta(10), c(10)",
                                        "b\ta(10), c(500)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out)
        assert report.mode == "full"
        assert "second-best" in report.reason
        assert_identical_to_full_rebuild(out, revised, cfg=cfg)

    def test_update_preserves_stored_heuristics(self, tmp_path):
        cfg = HeuristicConfig(back_link_factor=2)
        old = self.make_old(tmp_path, heuristics=cfg)
        revised = build(DIAMOND.replace("b\ta(10), c(10)",
                                        "b\ta(10), c(500)"))
        out = tmp_path / "new.snap"
        report = update_snapshot(old, revised, out)
        assert report.heuristics == cfg
        assert SnapshotReader.open(out).heuristics() == cfg
        assert_identical_to_full_rebuild(out, revised, cfg=cfg)

    def test_identical_map_reuses_everything(self, tmp_path):
        old = self.make_old(tmp_path)
        out = tmp_path / "new.snap"
        report = update_snapshot(old, build(DIAMOND), out)
        assert report.mode == "incremental"
        assert report.remapped == []
        assert report.diff.is_empty
        assert out.read_bytes() == old.read_bytes()


class TestRealMaps:
    @pytest.mark.parametrize("path", sorted(DATA.glob("d.*")),
                             ids=lambda p: p.name)
    def test_no_change_round_trip(self, tmp_path, path):
        graph = Pathalias().build([(path.name, path.read_text())])
        old = tmp_path / "old.snap"
        snap(graph, old)
        again = Pathalias().build([(path.name, path.read_text())])
        out = tmp_path / "new.snap"
        report = update_snapshot(old, again, out)
        assert report.mode == "incremental"
        assert report.remapped == []
        assert out.read_bytes() == old.read_bytes()


class TestCompactDiffHelpers:
    def test_compact_link_costs_match_mapdiff(self):
        from repro.graph.compact import CompactGraph
        from repro.netsim.mapdiff import _link_costs

        graph = build(DIAMOND)
        cg = CompactGraph.compile(graph)
        assert compact_link_costs(cg) == _link_costs(graph)

    def test_diff_compact_graphs_matches_diff_graphs(self):
        from repro.graph.compact import CompactGraph
        from repro.netsim.mapdiff import diff_graphs

        old = build(DIAMOND)
        new = build(DIAMOND.replace("b\ta(10), c(10)",
                                    "b\ta(10), c(500)") + "e\td(5)\n")
        got = diff_compact_graphs(CompactGraph.compile(old),
                                  CompactGraph.compile(new))
        want = diff_graphs(old, new)
        assert got.hosts_added == want.hosts_added
        assert got.links_added == want.links_added
        assert got.cost_changes == want.cost_changes
