"""Cross-module integration tests at realistic scale."""

import pytest

from repro import HeuristicConfig, Pathalias, compute_stats
from repro.core.dense import DenseMapper
from repro.core.mapper import Mapper
from repro.core.printer import print_routes
from repro.graph.build import build_graph
from repro.mailer.address import MailerStyle
from repro.mailer.delivery import Network
from repro.mailer.routedb import RouteDatabase
from repro.mailer.rewrite import RouteOptimizer
from repro.netsim.mapgen import MapParams, generate_map
from repro.parser.grammar import parse_text


@pytest.fixture(scope="module")
def generated():
    return generate_map(MapParams.small(seed=99))


@pytest.fixture(scope="module")
def run(generated):
    return Pathalias().run_detailed(generated.files, generated.localhost)


class TestEndToEnd:
    def test_whole_pipeline_consistent(self, generated, run):
        stats = compute_stats(run.graph)
        assert stats.hosts >= generated.expected_hosts * 0.9
        assert len(run.table) > 0
        assert run.table.unreachable == []

    def test_routes_are_wellformed_format_strings(self, run):
        for record in run.table:
            assert record.route.count("%s") == 1
            assert record.cost >= 0

    def test_costs_match_mapping(self, run):
        for record in run.table:
            assert record.cost == run.mapping.best(record.node).cost

    def test_sampled_routes_deliver(self, generated, run):
        """Pathalias's philosophy, measured: sampled routes reach their
        hosts when relays speak the appropriate conventions."""
        styles = {}
        # ARPANET-capable backbone: heuristics at gateways.
        for host in generated.backbone:
            styles[host] = MailerStyle.HEURISTIC
        net = Network(run.graph, styles=styles,
                      default_style=MailerStyle.HEURISTIC)
        sample = [r for r in run.table][: 200]
        failures = []
        for record in sample:
            if record.node.is_domain:
                continue
            report = net.deliver_route(generated.localhost, record.route)
            if not report.delivered:
                failures.append((record.name, report.failure))
        assert not failures, failures[:5]

    def test_route_database_round_trip(self, run, tmp_path):
        from repro.mailer.routedb import IndexedPathsFile

        index = IndexedPathsFile.build(run.table, tmp_path / "paths")
        db = index.database()
        for record in list(run.table)[:50]:
            if record.node.is_domain:
                continue
            assert db.resolve(record.name, "u").address == \
                record.route.replace("%s", "u", 1)

    def test_optimizer_against_generated_db(self, generated, run):
        db = RouteDatabase.from_table(run.table)
        optimizer = RouteOptimizer(db, localhost=generated.localhost)
        target = next(r.name for r in run.table
                      if not r.node.is_domain and r.cost > 0)
        optimized = optimizer.optimize(f"madeup1!madeup2!{target}!user")
        assert optimized.pivot == target
        assert optimized.address == run.table.address(target, "user")


class TestCrossValidation:
    def test_dense_matches_sparse_at_scale(self, generated):
        cfg = HeuristicConfig(infer_back_links=False)
        files = generated.files
        graph_a = build_graph([(n, parse_text(t, n)) for n, t in files])
        graph_b = build_graph([(n, parse_text(t, n)) for n, t in files])
        sparse = Mapper(graph_a, cfg).run(generated.localhost)
        dense = DenseMapper(graph_b, cfg).run(generated.localhost)
        table_a = print_routes(sparse)
        table_b = print_routes(dense)
        assert table_a.format_paper() == table_b.format_paper()

    def test_second_best_never_worse(self, generated):
        files = generated.files
        tree = Pathalias().run_detailed(files, generated.localhost)
        dag = Pathalias(heuristics=HeuristicConfig(second_best=True)) \
            .run_detailed(files, generated.localhost)
        tree_costs = {r.node.name: r.cost for r in tree.table}
        for record in dag.table:
            before = tree_costs.get(record.node.name)
            if before is not None:
                assert record.cost <= before

    def test_determinism_across_runs(self, generated):
        a = Pathalias().run_text(generated.all_text(),
                                 generated.localhost)
        b = Pathalias().run_text(generated.all_text(),
                                 generated.localhost)
        assert a.format_paper() == b.format_paper()
