"""Unit tests for the int-keyed heaps: the flat-index IntHeap and the
packed lazy-deletion LazyPackedHeap the compiled engine drives, each
checked for extraction-order equivalence with the reference BinaryHeap
under random operation streams."""

import random

import pytest

from repro.adt.heap import BinaryHeap
from repro.adt.intheap import IntHeap, LazyPackedHeap


class TestBasics:
    def test_insert_extract_sorted(self):
        heap = IntHeap(16)
        for value in (5, 3, 8, 1, 9, 2):
            heap.insert(value, value)
        out = []
        while heap:
            _state, priority = heap.extract_min()
            out.append(priority)
        assert out == sorted(out)

    def test_len_bool_contains(self):
        heap = IntHeap(4)
        assert not heap
        heap.insert(2, 1)
        assert heap and len(heap) == 1
        assert 2 in heap and 0 not in heap
        heap.extract_min()
        assert 2 not in heap

    def test_peek_does_not_remove(self):
        heap = IntHeap(4)
        heap.insert(0, 2)
        heap.insert(1, 1)
        assert heap.peek() == (1, 1)
        assert len(heap) == 2

    def test_empty_raises(self):
        with pytest.raises(IndexError):
            IntHeap(1).extract_min()
        with pytest.raises(IndexError):
            IntHeap(1).peek()

    def test_duplicate_insert_rejected(self):
        heap = IntHeap(4)
        heap.insert(1, 1)
        with pytest.raises(ValueError):
            heap.insert(1, 2)

    def test_priority_query(self):
        heap = IntHeap(4)
        heap.insert(3, 7)
        assert heap.priority(3) == 7
        with pytest.raises(KeyError):
            heap.priority(0)

    def test_clear_resets_for_reuse(self):
        heap = IntHeap(8)
        for i in range(8):
            heap.insert(i, 8 - i)
        heap.extract_min()
        heap.clear()
        assert not heap and 3 not in heap
        heap.insert(3, 1)  # fresh serial space after clear
        assert heap.extract_min() == (3, 1)

    def test_grow_admits_new_states(self):
        heap = IntHeap(2)
        heap.insert(1, 5)
        heap.grow(10)
        heap.insert(9, 1)
        assert heap.extract_min() == (9, 1)


class TestDecreaseKey:
    def test_decrease_moves_to_front(self):
        heap = IntHeap(4)
        heap.insert(0, 100)
        heap.insert(1, 1)
        heap.decrease_key(0, 0)
        assert heap.extract_min() == (0, 0)

    def test_increase_rejected(self):
        heap = IntHeap(4)
        heap.insert(0, 5)
        with pytest.raises(ValueError):
            heap.decrease_key(0, 10)

    def test_decrease_missing_raises(self):
        with pytest.raises(KeyError):
            IntHeap(4).decrease_key(0, 1)

    def test_fifo_tie_break_survives_decrease(self):
        heap = IntHeap(4)
        heap.insert(0, 9)
        heap.insert(1, 9)
        heap.insert(2, 20)
        heap.decrease_key(2, 9)
        order = [heap.extract_min()[0] for _ in range(3)]
        # State 2 keeps its (late) serial: stays behind the others.
        assert order == [0, 1, 2]

    def test_invariant_checker_catches_corruption(self):
        heap = IntHeap(10)
        for i in range(10):
            heap.insert(i, i)
        heap._keys[0] = heap._keys[9] + 1  # corrupt on purpose
        with pytest.raises(AssertionError):
            heap.check_invariant()


class TestEquivalenceWithBinaryHeap:
    """The two engines must extract identical (state, priority)
    sequences — route determinism depends on it."""

    def test_random_streams_match(self):
        rng = random.Random(1986)
        for _round in range(20):
            size = rng.randint(1, 200)
            ref: BinaryHeap[int] = BinaryHeap()
            fast = IntHeap(size)
            queued: set[int] = set()
            for _op in range(500):
                choice = rng.random()
                if choice < 0.5 and len(queued) < size:
                    state = rng.choice(
                        [s for s in range(size) if s not in queued])
                    pri = rng.randint(0, 50)
                    ref.insert(state, pri)
                    fast.insert(state, pri)
                    queued.add(state)
                elif choice < 0.75 and queued:
                    state = rng.choice(sorted(queued))
                    new = rng.randint(0, ref.priority(state))
                    ref.decrease_key(state, new)
                    fast.decrease_key(state, new)
                elif queued:
                    popped = ref.extract_min()
                    assert popped == fast.extract_min()
                    queued.remove(popped[0])
                fast.check_invariant()
            while ref:
                assert ref.extract_min() == fast.extract_min()
            assert not fast


class TestLazyPackedHeap:
    """The heap the compiled mapper actually drives: no decrease-key,
    a cost decrease re-pushes under the state's original serial and
    the consumer skips states it has already extracted."""

    def test_basic_ordering_and_clear(self):
        heap = LazyPackedHeap()
        for state, cost in ((3, 30), (1, 10), (2, 20)):
            heap.push(state, cost, heap.next_serial())
        assert len(heap) == 3 and heap
        assert [heap.pop() for _ in range(3)] == \
            [(1, 10), (2, 20), (3, 30)]
        assert not heap
        heap.push(5, 1, heap.next_serial())
        heap.clear()
        assert not heap and heap.serial == 0

    def test_fifo_tie_break_and_stale_skip(self):
        heap = LazyPackedHeap()
        serial_a = heap.next_serial()
        serial_b = heap.next_serial()
        heap.push(0, 9, serial_a)
        heap.push(1, 9, serial_b)
        heap.push(0, 5, serial_a)  # "decrease": same serial, lower cost
        extracted = []
        seen = set()
        while heap:
            state, cost = heap.pop()
            if state in seen:
                continue  # stale superseded entry
            seen.add(state)
            extracted.append((state, cost))
        # State 0's decrease wins; the stale (0, 9) entry was skipped;
        # equal-cost states would extract in serial (FIFO) order.
        assert extracted == [(0, 5), (1, 9)]

    def test_random_streams_match_binary_heap(self):
        """Dijkstra-shaped random workloads: insert, decrease, extract
        — the live extraction sequence must equal BinaryHeap's."""
        rng = random.Random(2026)
        for _round in range(20):
            size = rng.randint(1, 150)
            ref: BinaryHeap[int] = BinaryHeap()
            lazy = LazyPackedHeap()
            serial_of = {}
            extracted = set()
            queued: set[int] = set()

            def lazy_pop():
                while True:
                    state, cost = lazy.pop()
                    if state not in extracted:
                        extracted.add(state)
                        return state, cost

            for _op in range(400):
                choice = rng.random()
                free = [s for s in range(size)
                        if s not in queued and s not in extracted]
                if choice < 0.5 and free:
                    state = rng.choice(free)
                    pri = rng.randint(0, 40)
                    ref.insert(state, pri)
                    serial_of[state] = lazy.next_serial()
                    lazy.push(state, pri, serial_of[state])
                    queued.add(state)
                elif choice < 0.75 and queued:
                    state = rng.choice(sorted(queued))
                    new = rng.randint(0, ref.priority(state))
                    if new < ref.priority(state):
                        ref.decrease_key(state, new)
                        lazy.push(state, new, serial_of[state])
                elif queued:
                    popped = ref.extract_min()
                    assert popped == lazy_pop()
                    queued.remove(popped[0])
            while ref:
                popped = ref.extract_min()
                assert popped == lazy_pop()
