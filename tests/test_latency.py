"""Latency-simulation tests."""

import pytest

from repro.config import HeuristicConfig
from repro.core.mapper import Mapper
from repro.errors import RouteError
from repro.graph.build import build_graph
from repro.netsim.latency import (
    HOP_OVERHEAD,
    TRANSMIT,
    LatencyModel,
    LinkSchedule,
    link_period,
    mean_latency,
    simulate_route,
)
from repro.parser.grammar import parse_text


def mapped(text: str, source: str):
    graph = build_graph([("d.map", parse_text(text))])
    return Mapper(graph).run(source)


class TestPeriods:
    def test_grades(self):
        assert link_period(25) == 0       # LOCAL
        assert link_period(300) == 0      # DEMAND
        assert link_period(500) == 60     # HOURLY
        assert link_period(1800) == 720   # EVENING
        assert link_period(5000) == 1440  # DAILY/POLLED
        assert link_period(30000) == 10080  # WEEKLY

    def test_beyond_table(self):
        assert link_period(10 ** 6) == 10080


class TestSchedule:
    def test_on_demand_departs_immediately(self):
        schedule = LinkSchedule(period=0, phase=0)
        assert schedule.next_departure(123) == 123

    def test_waits_for_window(self):
        schedule = LinkSchedule(period=60, phase=15)
        assert schedule.next_departure(0) == 15
        assert schedule.next_departure(15) == 15
        assert schedule.next_departure(16) == 75
        assert schedule.next_departure(75) == 75

    def test_phase_stability(self):
        model = LatencyModel(seed=4)
        from repro.graph.node import Node

        a, b = Node("a", 0), Node("b", 1)
        first = model.schedule_for(a, b, 500)
        second = model.schedule_for(a, b, 500)
        assert first is second


class TestSimulation:
    def test_demand_chain_is_fast(self):
        result = mapped("a b(DEMAND)\nb c(DEMAND)", "a")
        outcome = simulate_route(result, "c", LatencyModel(seed=1))
        assert outcome.hops == 2
        assert outcome.minutes == 2 * (HOP_OVERHEAD + TRANSMIT)
        assert outcome.waits == [0, 0]

    def test_daily_link_waits(self):
        result = mapped("a b(DAILY)", "a")
        outcome = simulate_route(result, "b", LatencyModel(seed=2))
        assert outcome.hops == 1
        assert outcome.minutes >= HOP_OVERHEAD + TRANSMIT
        assert outcome.minutes <= 1440 + HOP_OVERHEAD + TRANSMIT

    def test_net_star_is_one_call(self):
        """Entering and leaving a network is one physical transfer."""
        result = mapped("a m1(DEMAND)\nNET = {m1, m2}(HOURLY)", "a")
        outcome = simulate_route(result, "m2", LatencyModel(seed=3))
        assert outcome.hops == 2  # a->m1, m1->(net)->m2

    def test_alias_edges_add_nothing(self):
        result = mapped("a b(DEMAND)\nb = bee", "a")
        direct = simulate_route(result, "b", LatencyModel(seed=4))
        aliased = simulate_route(result, "bee", LatencyModel(seed=4))
        assert direct.minutes == aliased.minutes

    def test_source_is_instant(self):
        result = mapped("a b(10)", "a")
        outcome = simulate_route(result, "a", LatencyModel(seed=5))
        assert outcome.minutes == 0
        assert outcome.hops == 0

    def test_unknown_destination(self):
        result = mapped("a b(10)", "a")
        with pytest.raises(RouteError):
            simulate_route(result, "ghost", LatencyModel())

    def test_deterministic_given_seed(self):
        result = mapped("a b(HOURLY)\nb c(DAILY)", "a")
        first = simulate_route(result, "c", LatencyModel(seed=9))
        second = simulate_route(result, "c", LatencyModel(seed=9))
        assert first.minutes == second.minutes


class TestMeanLatency:
    def test_demand_routes_beat_polled(self):
        fast = mapped("a b(DEMAND)\nb c(DEMAND)", "a")
        slow = mapped("a b(POLLED)\nb c(POLLED)", "a")
        assert mean_latency(fast, ["c"], seed=6) < \
            mean_latency(slow, ["c"], seed=6)

    def test_cost_ranking_tracks_latency(self):
        """The pragmatic metric's whole point: cheaper routes are
        faster routes, frequency-wise."""
        result = mapped(
            "a hub(DEMAND), slow(POLLED)\n"
            "hub far(DEMAND)\nslow far(POLLED)", "a")
        hub_latency = mean_latency(result, ["hub"], seed=7)
        slow_latency = mean_latency(result, ["slow"], seed=7)
        assert hub_latency < slow_latency

    def test_unreachable_skipped(self):
        cfg = HeuristicConfig(infer_back_links=False)
        graph = build_graph([("m", parse_text("a b(10)\nx y(10)"))])
        result = Mapper(graph, cfg).run("a")
        assert mean_latency(result, ["x"], seed=8) == 0.0
