"""The DFA scanner must produce token-identical output to the hand one."""

import pytest

from repro.errors import ScanError
from repro.parser.lexgen import LexScanner
from repro.parser.scanner import Scanner

SAMPLES = [
    "a b(10), c(20)",
    "a @b(10), @c(20)",
    "a b!(10), c!(20)",
    "UNC-dwarf = {dopey, grumpy, sleepy}(10)",
    "ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)",
    "unc\tduke(HOURLY), phs(HOURLY*4)",
    "duke\tunc(DEMAND), research(DAILY/2), phs(DEMAND)",
    "private {bilbo}\nbilbo\twiretap(10)",
    "dead {a!b, c}",
    "adjust {vortex(HIGH), foo(-5+10)}",
    'file "d.region7"',
    "x\ty(((1+2))*3)",
    "a b(10),\n\tc(20), \\\nd(30)",
    "# comment only\n\n\nq r\n",
    ".edu = {.rutgers}",
    "3com 4votes(5)",
    "gatewayed {ARPA, CSNET}",
]


@pytest.mark.parametrize("text", SAMPLES)
def test_token_streams_identical(text):
    hand = Scanner(text, "x").tokens()
    dfa = LexScanner(text, "x").tokens()
    assert hand == dfa


def test_errors_raised_on_same_inputs():
    for bad in ("a ;", "a b)"):
        with pytest.raises(ScanError):
            Scanner(bad).tokens()
        with pytest.raises(ScanError):
            LexScanner(bad).tokens()


def test_large_input_equivalence():
    from repro.netsim.mapgen import MapParams, generate_map

    generated = generate_map(MapParams.small(seed=7))
    for name, text in generated.files:
        assert Scanner(text, name).tokens() == \
            LexScanner(text, name).tokens()


def test_dfa_is_table_driven():
    """Guard the experimental setup: the lex stand-in interprets
    transition tables (per-character dict lookups), it does not call the
    hand scanner."""
    import repro.parser.lexgen as lexgen

    assert lexgen._TABLE_NORMAL is not lexgen._TABLE_COST
    assert lexgen.LexScanner._scan_line is not Scanner._scan_line
