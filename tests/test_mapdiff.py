"""Map-revision diff tests."""

from repro import Pathalias
from repro.netsim.mapdiff import (
    diff_map_texts,
    route_impact,
    route_impact_for_source,
)

OLD = [("d.map", "a b(10), c(20)\nb a(10)\nc a(20)\nb c(30)")]
NEW = [("d.map", "a b(10), c(99)\nb a(10)\nc a(20)\nb d(5)\nd b(5)")]


class TestStructuralDiff:
    def test_hosts_added(self):
        diff = diff_map_texts(OLD, NEW)
        assert diff.hosts_added == ["d"]
        assert diff.hosts_removed == []

    def test_links_added_and_removed(self):
        diff = diff_map_texts(OLD, NEW)
        assert ("b", "d") in diff.links_added
        assert ("b", "c") in diff.links_removed

    def test_cost_changes(self):
        diff = diff_map_texts(OLD, NEW)
        assert ("a", "c", 20, 99) in diff.cost_changes

    def test_identical_maps_empty(self):
        diff = diff_map_texts(OLD, OLD)
        assert diff.is_empty
        assert diff.summary() == "no changes"

    def test_summary_counts(self):
        diff = diff_map_texts(OLD, NEW)
        text = diff.summary()
        assert "+1/-0 hosts" in text
        assert "1 cost changes" in text

    def test_host_removed(self):
        newer = [("d.map", "a b(10)\nb a(10)")]
        diff = diff_map_texts(OLD, newer)
        assert diff.hosts_removed == ["c"]

    def test_private_hosts_ignored(self):
        with_private = [("d.map",
                         "a b(10)\nb a(10)\nprivate {p}\np a(5)")]
        without = [("d.map", "a b(10)\nb a(10)")]
        diff = diff_map_texts(without, with_private)
        assert diff.hosts_added == []


class TestRouteImpact:
    def test_rerouted_and_gained(self):
        impact = route_impact_for_source(OLD, NEW, "a")
        assert "d" in impact.gained
        # c's route changes: direct link became expensive, so the map
        # reroutes through b... (b c link is gone in NEW; c stays
        # direct but recosted)
        assert "c" in impact.rerouted or "c" in impact.recosted

    def test_unchanged_counted(self):
        impact = route_impact_for_source(OLD, OLD, "a")
        assert impact.rerouted == []
        assert impact.gained == []
        assert impact.lost == []
        assert impact.stability() == 1.0

    def test_lost_destination(self):
        newer = [("d.map", "a b(10)\nb a(10)")]
        impact = route_impact_for_source(OLD, newer, "a")
        assert "c" in impact.lost

    def test_direct_table_comparison(self):
        old_table = Pathalias().run_text("a b(10)", localhost="a")
        new_table = Pathalias().run_text("a b(25)", localhost="a")
        impact = route_impact(old_table, new_table)
        assert impact.recosted == ["b"]
        assert impact.unchanged == 1  # the source itself

    def test_total_adds_up(self):
        impact = route_impact_for_source(OLD, NEW, "a")
        assert impact.total == impact.unchanged \
            + len(impact.rerouted) + len(impact.recosted) \
            + len(impact.gained) + len(impact.lost)


class TestRevisionStability:
    def test_small_edit_leaves_most_routes_alone(self):
        """The monthly-map experience: a regional edit barely moves the
        global route table."""
        from repro.netsim.mapgen import MapParams, generate_map

        generated = generate_map(MapParams.small(seed=31))
        old_files = generated.files
        # Revision: append one new leaf host to the last region file.
        name, text = old_files[-1]
        hub = generated.backbone[0]
        new_files = old_files[:-1] + [
            (name, text + f"\nnewcomer {hub}(DAILY)\n"
                          f"{hub} newcomer(DAILY)")]
        impact = route_impact_for_source(old_files, new_files,
                                         generated.localhost)
        assert impact.gained == ["newcomer"]
        assert impact.stability() > 0.95
