"""Map-generator tests: the synthetic data must have the paper's shape."""

import pytest

from repro import Pathalias
from repro.graph.build import build_graph
from repro.graph.stats import compute_stats
from repro.netsim.mapgen import GeneratedMap, MapParams, generate_map
from repro.netsim.models import NameGenerator, link_cost_menu, pick_cost
from repro.parser.grammar import parse_text

import random


@pytest.fixture(scope="module")
def small_map() -> GeneratedMap:
    return generate_map(MapParams.small(seed=42))


@pytest.fixture(scope="module")
def small_run(small_map):
    return Pathalias().run_detailed(small_map.files, small_map.localhost)


class TestNameGenerator:
    def test_unique(self):
        gen = NameGenerator(random.Random(0))
        names = [gen.host() for _ in range(500)]
        assert len(set(names)) == 500

    def test_keywords_never_generated(self):
        gen = NameGenerator(random.Random(0))
        names = {gen.host() for _ in range(2000)}
        assert not names & {"private", "dead", "adjust", "delete",
                            "file", "gatewayed"}

    def test_deterministic(self):
        a = NameGenerator(random.Random(7))
        b = NameGenerator(random.Random(7))
        assert [a.host() for _ in range(50)] == \
            [b.host() for _ in range(50)]


class TestCostMenu:
    def test_classes(self):
        for cls in ("backbone", "regional", "leaf"):
            assert link_cost_menu(cls)

    def test_unknown_class(self):
        with pytest.raises(ValueError):
            link_cost_menu("imaginary")

    def test_pick_cost_valid_expression(self):
        from repro.parser.costexpr import evaluate_cost

        rng = random.Random(3)
        for cls in ("backbone", "regional", "leaf"):
            for _ in range(20):
                assert evaluate_cost(pick_cost(rng, cls)) > 0


class TestGeneratedStructure:
    def test_deterministic(self):
        a = generate_map(MapParams.small(seed=5))
        b = generate_map(MapParams.small(seed=5))
        assert a.files == b.files

    def test_different_seeds_differ(self):
        a = generate_map(MapParams.small(seed=5))
        b = generate_map(MapParams.small(seed=6))
        assert a.files != b.files

    def test_parses_cleanly(self, small_map):
        for name, text in small_map.files:
            parse_text(text, name)  # must not raise

    def test_sparse(self, small_map):
        graph = build_graph([(n, parse_text(t, n))
                             for n, t in small_map.files])
        stats = compute_stats(graph)
        assert stats.is_sparse(factor=10)

    def test_file_per_region_plus_extras(self, small_map):
        names = [n for n, _ in small_map.files]
        assert "d.backbone" in names
        assert "d.othernets" in names
        assert sum(1 for n in names if n.startswith("d.region")) == \
            small_map.params.regions


class TestGeneratedBehaviour:
    def test_everything_reachable(self, small_run):
        assert small_run.table.unreachable == []

    def test_oneway_leaves_reached_by_inference(self, small_map,
                                                small_run):
        assert small_run.mapping.stats.inferred_links >= \
            len(small_map.oneway_leaves)
        for leaf in small_map.oneway_leaves:
            assert small_run.table.lookup(leaf) is not None

    def test_aliases_share_routes(self, small_map, small_run):
        table = small_run.table
        for alias, primary in small_map.aliases.items():
            a = table.lookup(alias)
            p = table.lookup(primary)
            assert a is not None and p is not None
            assert a.cost == p.cost

    def test_domain_hosts_have_qualified_routes(self, small_map,
                                                small_run):
        table = small_run.table
        found = 0
        for host, fqdn in small_map.domain_hosts.items():
            record = table.lookup(fqdn) or table.lookup(host)
            assert record is not None
            found += 1
        assert found == len(small_map.domain_hosts)

    def test_private_collisions_usable(self, small_map, small_run):
        # Private names never appear in output, but the public twin (if
        # any) may; at minimum nothing crashed and no route leaked a
        # blank name.
        names = {r.name for r in small_run.table}
        assert all(name for name in names)

    def test_expected_scale(self):
        generated = generate_map(MapParams.medium(seed=1))
        graph = build_graph([(n, parse_text(t, n))
                             for n, t in generated.files])
        stats = compute_stats(graph)
        # medium preset: roughly a thousand hosts, few thousand links
        assert 800 <= stats.hosts <= 3000
        assert stats.links >= 2 * stats.hosts

    def test_all_text_concatenation(self, small_map):
        text = small_map.all_text()
        assert 'file "d.backbone"' in text
