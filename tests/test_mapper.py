"""Mapper tests: Dijkstra variant, three vertex states, determinism."""

import pytest

from repro.config import HeuristicConfig
from repro.core.mapper import Mapper
from repro.errors import MappingError
from repro.graph.build import build_graph
from repro.parser.grammar import parse_text


def build(text: str):
    return build_graph([("d.map", parse_text(text))])


def run(text: str, source: str, **cfg):
    graph = build(text)
    heuristics = HeuristicConfig(**cfg) if cfg else None
    return Mapper(graph, heuristics).run(source)


class TestShortestPaths:
    def test_direct_vs_relay(self):
        """The 1981 observation: all routes go through duke despite the
        direct unc-phs link, because of the cost difference."""
        result = run("unc duke(500), phs(2000)\n"
                     "duke phs(300)", "unc")
        assert result.cost("phs") == 800

    def test_source_cost_zero(self):
        result = run("a b(10)", "a")
        assert result.cost("a") == 0

    def test_chain_costs_accumulate(self):
        result = run("a b(10)\nb c(20)\nc d(30)", "a")
        assert result.cost("d") == 60

    def test_cheapest_of_parallel_paths(self):
        result = run("a b(10), c(100)\nb c(10)", "a")
        assert result.cost("c") == 20

    def test_zero_cost_links(self):
        result = run("a b(0)\nb c(0)", "a")
        assert result.cost("c") == 0

    def test_unknown_source_raises(self):
        graph = build("a b(10)")
        with pytest.raises(MappingError):
            Mapper(graph).run("ghost")

    def test_source_by_node_object(self):
        graph = build("a b(10)")
        result = Mapper(graph).run(graph.require("a"))
        assert result.cost("b") == 10


class TestVertexStates:
    def test_unreachable_without_backlinks(self):
        result = run("a b(10)\nisolated elsewhere(10)", "a",
                     infer_back_links=False)
        unreachable = {n.name for n in result.unreachable()}
        assert unreachable == {"isolated", "elsewhere"}

    def test_all_mapped_labels_final(self):
        result = run("a b(10)\nb c(10)\nc a(10)", "a")
        for label in result.labels.values():
            assert label.mapped

    def test_parent_links_form_tree(self):
        result = run("a b(10), c(20)\nb c(5)", "a")
        c_label = result.best(result.graph.require("c"))
        assert c_label.parent.node.name == "b"
        assert c_label.parent.parent.node.name == "a"


class TestDeterminism:
    def test_tie_breaks_by_declaration_order(self):
        """Two equal-cost paths: the first-declared wins, every run."""
        for _ in range(3):
            result = run("a b(10), c(10)\nb d(10)\nc d(10)", "a")
            d_label = result.best(result.graph.require("d"))
            assert d_label.parent.node.name == "b"

    def test_stats_counted(self):
        result = run("a b(10), c(20)\nb c(5)", "a")
        assert result.stats.pops == 3
        assert result.stats.relaxations >= 3


class TestAliasesInMapping:
    def test_alias_reached_at_same_cost(self):
        result = run("a princeton(40)\nprinceton = fun", "a")
        assert result.cost("fun") == 40
        assert result.cost("princeton") == 40

    def test_route_continues_through_alias(self):
        """nosc/noscvax: neighbors of either name are reachable."""
        result = run("a noscvax(40)\nnosc = noscvax\nnosc w(10)", "a")
        assert result.cost("w") == 50


class TestNetworksInMapping:
    def test_pay_to_enter_free_to_leave(self):
        result = run("a NET(10)\nNET = {m1, m2}(30)", "a")
        # a has an explicit link to the net: entering costs 10,
        # leaving is free.
        assert result.cost("m1") == 10
        assert result.cost("m2") == 10

    def test_member_to_member_via_net(self):
        result = run("start m1(5)\nNET = {m1, m2}(30)", "start")
        assert result.cost("m2") == 35  # 5 + 30 (enter) + 0 (leave)

    def test_net_cost_equals_clique_cost(self):
        """The star representation preserves the clique's cost
        structure."""
        star = run("s a(7)\nNET = {a, b}(11)", "s")
        clique = run("s a(7)\na b(11)\nb a(11)", "s")
        assert star.cost("b") == clique.cost("b")
