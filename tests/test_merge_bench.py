"""The CI-artifact import path for BENCH_routing.json.

``tools/merge_bench.py`` is how multicore CI numbers (pool scaling,
fan-out throughput) land in the repo's benchmark document without a
multicore dev machine: a condensed trajectory entry per import, and
``--adopt`` to let a CI run's section become the headline numbers
while the replaced values are archived, never lost.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _tool():
    sys.path.insert(0, str(REPO / "tools"))
    try:
        import merge_bench
    finally:
        sys.path.pop(0)
    return merge_bench


def _artifact(ratio: float) -> dict:
    return {
        "benchmark": "BENCH_routing",
        "generated_at": "2026-08-08T00:00:00+00:00",
        "environment": {"visible_cpus": 4},
        "batch": {"runs": [
            {"jobs": 1, "tables_per_sec": 17.0,
             "speedup_vs_serial": 1.0, "seconds": 1.9},
            {"jobs": 4, "tables_per_sec": 55.0,
             "speedup_vs_serial": 3.2, "seconds": 0.6},
        ]},
        "service": {"fanout": {
            "inprocess_lookups_per_sec": 14000.0,
            "fanout_lookups_per_sec": ratio * 14000.0,
            "fanout_vs_inprocess": ratio,
            "pipelined": {"lookups_per_sec": ratio * 14000.0,
                          "vs_inprocess": ratio,
                          "roundtrips_per_lookup": 1.6,
                          "backend_health": ["connected:9:0:1:9:2"]},
            "lockstep": {"lookups_per_sec": 2600.0,
                         "vs_inprocess": 0.19,
                         "roundtrips_per_lookup": 1.6,
                         "backend_health": ["connected:9:0:1:0:0"]},
        }},
    }


class TestMergeBench:
    def test_appends_condensed_trajectory_entry(self):
        tool = _tool()
        bench = {"benchmark": "BENCH_routing"}
        log = tool.merge(bench, _artifact(1.3), "ci-multicore", [])
        assert any("appended" in line for line in log)
        (entry,) = bench["trajectory"]
        assert entry["source"] == "ci-multicore"
        assert entry["environment"]["visible_cpus"] == 4
        assert entry["batch_runs"][1]["speedup_vs_serial"] == 3.2
        assert "seconds" not in entry["batch_runs"][1]  # condensed
        assert entry["fanout"]["fanout_vs_inprocess"] == 1.3
        assert entry["fanout"]["pipelined"][
            "roundtrips_per_lookup"] == 1.6
        assert "backend_health" not in entry["fanout"]["pipelined"]

    def test_adopt_replaces_and_archives(self):
        tool = _tool()
        bench = json.loads(json.dumps(_artifact(0.2)))  # old numbers
        tool.merge(bench, _artifact(1.3), "ci-cluster",
                   ["fanout", "batch"])
        # the artifact's sections are now the headline...
        assert bench["service"]["fanout"][
            "fanout_vs_inprocess"] == 1.3
        assert bench["batch"]["runs"][1]["speedup_vs_serial"] == 3.2
        # ... and the replaced numbers live on in the trajectory
        archived, imported = bench["trajectory"]
        assert archived["source"].startswith("superseded by")
        assert archived["fanout"]["fanout_vs_inprocess"] == 0.2
        assert imported["source"] == "ci-cluster"

    def test_cli_round_trip(self, tmp_path):
        tool = _tool()
        artifact = tmp_path / "artifact.json"
        artifact.write_text(json.dumps(_artifact(1.1)))
        bench = tmp_path / "BENCH.json"
        assert tool.main([str(artifact), "--bench", str(bench),
                          "--source", "ci"]) == 0
        document = json.loads(bench.read_text())
        assert document["trajectory"][0]["source"] == "ci"
        # a second import stacks, never overwrites
        assert tool.main([str(artifact), "--bench", str(bench),
                          "--source", "ci-again"]) == 0
        document = json.loads(bench.read_text())
        assert [e["source"] for e in document["trajectory"]] == \
            ["ci", "ci-again"]
        # unknown --adopt sections are refused
        assert tool.main([str(artifact), "--bench", str(bench),
                          "--adopt", "nonsense"]) == 2
