"""Facade tests, including the golden 1981 worked example."""

import pytest

from repro import HeuristicConfig, MappingError, Pathalias
from repro.parser.lexgen import LexScanner

from tests.conftest import PAPER_1981_OUTPUT


class TestPaper1981Example:
    """Experiment E2's correctness half: the exact published output."""

    def test_exact_output(self, paper_map):
        table = Pathalias().run_text(paper_map, localhost="unc")
        got = [(r.cost, r.name, r.route) for r in table]
        assert got == PAPER_1981_OUTPUT

    def test_routes_through_duke_despite_direct_phs_link(self, paper_map):
        """'all generated paths route mail through duke, despite the
        presence of a direct connection to phs from unc'."""
        table = Pathalias().run_text(paper_map, localhost="unc")
        assert table.route("phs") == "duke!phs!%s"

    def test_mixed_syntax_route(self, paper_map):
        """'the path to ucbvax uses UUCP conventions ... while the
        ARPANET portion has the host name on the right'."""
        table = Pathalias().run_text(paper_map, localhost="unc")
        assert table.route("mit-ai") == "duke!research!ucbvax!%s@mit-ai"

    def test_network_node_not_in_output(self, paper_map):
        table = Pathalias().run_text(paper_map, localhost="unc")
        assert table.lookup("ARPA") is None

    def test_same_result_with_lex_scanner(self, paper_map):
        hand = Pathalias().run_text(paper_map, localhost="unc")
        lex = Pathalias(scanner_class=LexScanner).run_text(
            paper_map, localhost="unc")
        assert hand.format_paper() == lex.format_paper()

    def test_run_from_other_source(self, paper_map):
        table = Pathalias().run_text(paper_map, localhost="ucbvax")
        assert table.route("ucbvax") == "%s"
        # ucbvax reaches the ARPANET directly.
        assert table.route("mit-ai") == "%s@mit-ai"


class TestFacade:
    def test_address_instantiation(self, paper_map):
        table = Pathalias().run_text(paper_map, localhost="unc")
        assert table.address("phs", "honey") == "duke!phs!honey"

    def test_format_tab_sorted_by_name(self, paper_map):
        table = Pathalias().run_text(paper_map, localhost="unc")
        lines = table.format_tab().splitlines()
        names = [line.split("\t")[0] for line in lines]
        assert names == sorted(names)

    def test_missing_localhost_raises(self, paper_map):
        with pytest.raises(MappingError):
            Pathalias().run_text(paper_map, localhost="nowhere")

    def test_case_folding(self):
        table = Pathalias(case_fold=True).run_text(
            "UNC Duke(10)\nDUKE phs(10)", localhost="unc")
        assert table.route("phs") == "duke!phs!%s"

    def test_multiple_files_scope_private(self):
        table = Pathalias().run_texts([
            ("f1", "a bilbo(10)\nbilbo c(10)"),
            ("f2", "private {bilbo}\nbilbo d(10)\na bilbo(10)"),
        ], localhost="a")
        # The public bilbo leads to c; d hangs off the private one and
        # is reached through it.
        assert table.route("c") == "bilbo!c!%s"
        assert table.route("d") == "bilbo!d!%s"

    def test_run_files(self, tmp_path, paper_map):
        path = tmp_path / "d.map"
        path.write_text(paper_map)
        table = Pathalias().run_files([path], localhost="unc")
        assert len(table) == 7

    def test_detailed_timings_present(self, paper_map):
        result = Pathalias().run_detailed([("m", paper_map)], "unc")
        times = result.times
        assert times.total > 0
        for phase in ("scan", "parse", "build", "map", "print"):
            assert getattr(times, phase) >= 0

    def test_unreachable_reported(self):
        table = Pathalias(
            heuristics=HeuristicConfig(infer_back_links=False)
        ).run_text("a b(10)\nlost faraway(10)", localhost="a")
        assert "lost" in table.unreachable

    def test_warnings_propagated(self):
        table = Pathalias().run_text("a a(10), b(10)", localhost="a")
        assert any("self" in w for w in table.warnings)

    def test_heuristics_passed_through(self, motown_map):
        tree = Pathalias().run_text(motown_map, localhost="princeton")
        dag = Pathalias(
            heuristics=HeuristicConfig(second_best=True)
        ).run_text(motown_map, localhost="princeton")
        assert tree.lookup("motown").cost > dag.lookup("motown").cost
