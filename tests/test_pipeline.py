"""Tagged pipelining: many requests in flight per connection.

The acceptance bars:

* the daemon accepts tagged requests (``@<tag> VERB ...``) and may
  answer them out of order, every reply frame carrying the tag — and
  untagged clients still see the exact lockstep protocol;
* the mux client reassembles interleaved tagged bulk replies (a TABLE
  racing a COSTS on one connection) without mixing them up;
* a daemon restart with N tagged requests in flight loses and
  misdelivers nothing — every request is retried transparently or
  errors cleanly;
* mixed-version clusters negotiate via the ``PIPELINE`` probe and stay
  byte-identical to the in-process federation in both directions
  (pipelined front end / lockstep daemon, lockstep front end /
  pipelined daemon).
"""

from __future__ import annotations

import asyncio
from pathlib import Path

import pytest

from repro.core.pathalias import Pathalias
from repro.errors import RouteError
from repro.service.backend import BackendShard, ShardBackend
from repro.service.daemon import RouteService, serve
from repro.service.federation import FederationService
from repro.service.shard import FederationView, Shard
from repro.service.store import build_snapshot

DATA = Path(__file__).parent / "data"
REGIONS = ("backbone", "universities", "arpa")


@pytest.fixture(scope="module")
def shard_paths(tmp_path_factory):
    """One snapshot per regional map, built once for the module."""
    tmp = tmp_path_factory.mktemp("pipeline-shards")
    paths = {}
    for name in REGIONS:
        text = (DATA / f"d.{name}").read_text()
        path = tmp / f"{name}.snap"
        build_snapshot(Pathalias().build([(f"d.{name}", text)]), path)
        paths[name] = str(path)
    return paths


class _LegacyRouteService(RouteService):
    """A stand-in for a daemon from before pipelining: the PIPELINE
    probe is an unknown verb, so clients must stay lockstep."""

    async def handle_line(self, line, state):
        verb = line.split(None, 1)[0].upper() if line.strip() else ""
        if verb == "PIPELINE":
            return "ERR unknown-command PIPELINE"
        return await super().handle_line(line, state)


async def _start(service):
    """Serve ``service`` on an ephemeral port; ``(server, port)``."""
    server = await serve(service)
    return server, server.sockets[0].getsockname()[1]


async def _lockstep(r, w, line):
    """One untagged request, its first reply line."""
    w.write(line.encode() + b"\n")
    await w.drain()
    return (await r.readline()).decode().rstrip("\n")


class TestTaggedWire:
    """The server side: raw tagged frames against the daemon."""

    def test_pipeline_probe(self, shard_paths):
        async def scenario():
            server, port = await _start(
                RouteService(shard_paths["backbone"]))
            r, w = await asyncio.open_connection("127.0.0.1", port)
            assert await _lockstep(r, w, "PIPELINE") == "OK pipeline 1"
            assert (await _lockstep(r, w, "PIPELINE extra")) == \
                "ERR usage PIPELINE"
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_tagged_replies_carry_the_tag(self, shard_paths):
        """A burst of tagged requests in one write: every reply frame
        is tagged, and reassembling by tag matches lockstep replies."""
        async def scenario():
            service = RouteService(shard_paths["backbone"])
            server, port = await _start(service)
            r, w = await asyncio.open_connection("127.0.0.1", port)
            want = {}
            for tag, line in (("a", "ROUTE mcvax piet"),
                              ("b", "EXACT mcvax"),
                              ("c", "ROUTE nowhere"),
                              ("d", "ROUTE allegra u")):
                want[tag] = await _lockstep(r, w, line)
            w.write(b"@a ROUTE mcvax piet\n@b EXACT mcvax\n"
                    b"@c ROUTE nowhere\n@d ROUTE allegra u\n")
            await w.drain()
            got = {}
            for _ in range(4):
                frame = (await r.readline()).decode().rstrip("\n")
                tagtok, _, reply = frame.partition(" ")
                assert tagtok.startswith("@"), frame
                got[tagtok[1:]] = reply
            assert got == want
            assert service.pipelined == 4
            assert service.inflight_hwm >= 1
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_tagged_source_applies_in_read_order(self, shard_paths):
        """``@1 SOURCE x`` then ``@2 ROUTE y`` in one write: the
        SOURCE is in effect (and answered) before the ROUTE runs."""
        async def scenario():
            server, port = await _start(
                RouteService(shard_paths["universities"]))
            r, w = await asyncio.open_connection("127.0.0.1", port)
            w.write(b"@1 SOURCE princeton\n@2 ROUTE topaz u\n")
            await w.drain()
            first = (await r.readline()).decode().rstrip("\n")
            assert first == "@1 OK source princeton"
            second = (await r.readline()).decode().rstrip("\n")
            assert second.startswith("@2 OK ")
            assert second.endswith("rutgers-ru!topaz!u")
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_tagged_bulk_frames_each_carry_the_tag(self, shard_paths):
        """A tagged TABLE: the head and all n continuation frames are
        prefixed, so a demux can tell them from a racing reply."""
        async def scenario():
            server, port = await _start(
                RouteService(shard_paths["arpa"]))
            r, w = await asyncio.open_connection("127.0.0.1", port)
            w.write(b"@t7 TABLE seismo brl-bmd nowhere\n")
            await w.drain()
            head = (await r.readline()).decode().rstrip("\n")
            assert head.startswith("@t7 OK table ")
            count = int(head.split()[-1])
            assert count == 2
            for _ in range(count):
                frame = (await r.readline()).decode().rstrip("\n")
                assert frame.startswith("@t7 ")
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_empty_tag_and_untagged_junk_stay_untagged(self,
                                                       shard_paths):
        async def scenario():
            server, port = await _start(
                RouteService(shard_paths["backbone"]))
            r, w = await asyncio.open_connection("127.0.0.1", port)
            reply = await _lockstep(r, w, "@ ROUTE mcvax")
            assert reply.startswith("ERR usage tagged request")
            # a still-healthy connection, lockstep as ever
            assert (await _lockstep(r, w, "EXACT mcvax")
                    ).startswith("OK ")
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_untagged_request_drains_tagged_work_first(self,
                                                       shard_paths):
        """Mixing styles on one connection: the untagged STATS reply
        comes after every in-flight tagged reply, strictly ordered."""
        async def scenario():
            server, port = await _start(
                RouteService(shard_paths["backbone"]))
            r, w = await asyncio.open_connection("127.0.0.1", port)
            w.write(b"@x ROUTE mcvax piet\n@y EXACT allegra\nSTATS\n")
            await w.drain()
            frames = [(await r.readline()).decode().rstrip("\n")
                      for _ in range(3)]
            assert frames[2].startswith("OK ")  # untagged, and last
            assert {f.split()[0] for f in frames[:2]} == {"@x", "@y"}
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_tagged_quit_drains_then_says_bye(self, shard_paths):
        async def scenario():
            server, port = await _start(
                RouteService(shard_paths["backbone"]))
            r, w = await asyncio.open_connection("127.0.0.1", port)
            w.write(b"@1 ROUTE mcvax piet\n@2 QUIT\n")
            await w.drain()
            frames = [(await r.readline()).decode().rstrip("\n")
                      for _ in range(2)]
            assert frames[0].startswith("@1 OK ")
            assert frames[1] == "@2 OK bye"
            assert (await r.readline()) == b""  # server hung up
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_stats_reports_pipeline_counters(self, shard_paths):
        async def scenario():
            server, port = await _start(
                RouteService(shard_paths["backbone"]))
            r, w = await asyncio.open_connection("127.0.0.1", port)
            w.write(b"@1 ROUTE mcvax\n@2 ROUTE allegra\n")
            await w.drain()
            await r.readline()
            await r.readline()
            stats = await _lockstep(r, w, "STATS")
            assert "n_pipelined=2" in stats
            assert "inflight_hwm=" in stats
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())


class TestMuxDemux:
    """The client side: the reply demultiplexer against a scripted
    server that interleaves bulk replies frame by frame — legal on the
    wire (every frame is tagged), even though the real daemon happens
    to write whole replies atomically."""

    def test_interleaved_table_and_costs_come_apart(self):
        async def scripted(reader, writer):
            line = (await reader.readline()).decode().strip()
            assert line == "PIPELINE"
            writer.write(b"OK pipeline 1\n")
            await writer.drain()
            tags = {}
            while len(tags) < 2:
                line = (await reader.readline()).decode().strip()
                tagtok, _, body = line.partition(" ")
                tags[body.split()[0]] = tagtok[1:]
            t, c = tags["TABLE"], tags["COSTS"]
            # COSTS head first, then strict alternation: two bulk
            # replies sharing the wire frame by frame
            writer.write(
                f"@{c} OK costs 2\n"
                f"@{t} OK table 2\n"
                f"@{c} 250 ARPA\n"
                f"@{t} 100 foo seismo!foo!%s\n"
                f"@{c} 2100 mcvax\n"
                f"@{t} 200 bar seismo!bar!%s\n".encode())
            await writer.drain()

        async def scenario():
            server = await asyncio.start_server(scripted, "127.0.0.1",
                                                0)
            port = server.sockets[0].getsockname()[1]
            backend = ShardBackend("scripted", "127.0.0.1", port)
            task = asyncio.create_task(backend.table_rows("seismo"))
            await asyncio.sleep(0)  # let TABLE submit first
            costs = await asyncio.gather(
                backend.state_costs("seismo", ["ARPA", "mcvax"]))
            rows = await task
            assert rows == {"foo": (100, "seismo!foo!%s"),
                            "bar": (200, "seismo!bar!%s")}
            assert costs == [{"ARPA": 250, "mcvax": 2100}]
            # COSTS was submitted second but completed first
            assert backend.out_of_order == 1
            assert backend.pipelined == 2
            assert backend.health().startswith("connected:2:0:1:2:1")
            await backend.aclose(grace=0.0)
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())


class _SlowRouteService(RouteService):
    """ROUTE answers take a beat — long enough to bounce the daemon
    while a burst of tagged requests is genuinely in flight."""

    async def handle_line(self, line, state):
        if line.strip().upper().startswith("ROUTE"):
            await asyncio.sleep(0.1)
        return await super().handle_line(line, state)


class TestRestartMidPipeline:
    """The resilience bar: a daemon restart with N tagged requests in
    flight — every request retried transparently, answers matched to
    their own lookups (misdelivery would cross the unique targets)."""

    def test_in_flight_burst_survives_a_restart(self, shard_paths):
        async def scenario():
            local = Shard.open("backbone", shard_paths["backbone"])
            entry = "seismo"
            targets = [s for s in local.sources() if s != entry][:8]
            want = {t: await local.entry_resolve(entry, t)
                    for t in targets}
            assert len(set(want.values())) == len(targets)

            writers = []
            service = _SlowRouteService(shard_paths["backbone"])

            async def handler(r, w):
                writers.append(w)
                await service.handle_connection(r, w)

            server = await asyncio.start_server(handler, "127.0.0.1",
                                                0)
            port = server.sockets[0].getsockname()[1]
            backend = ShardBackend("backbone", "127.0.0.1", port)
            shard = await BackendShard.connect("backbone", backend)
            tasks = [asyncio.create_task(
                shard.entry_resolve(entry, t)) for t in targets]
            await asyncio.sleep(0.03)  # all tagged, all in flight
            # hard restart: kill the listener AND every live socket
            server.close()
            await server.wait_closed()
            for w in writers:
                w.transport.abort()
            fresh = _SlowRouteService(shard_paths["backbone"])
            server = await asyncio.start_server(
                fresh.handle_connection, "127.0.0.1", port)
            got = await asyncio.gather(*tasks)
            assert dict(zip(targets, got)) == want
            assert backend.connects >= 2  # it really reconnected
            await backend.aclose(grace=0.0)
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())


class TestMixedVersionClusters:
    """The negotiation bar: stitched answers stay byte-identical to
    the in-process federation whichever side is old."""

    DESTS = ("topaz", "caip.rutgers.edu", "mit-ai", "mcvax",
             "x.edu", "nowhere")

    def _sweep(self, shard_paths, make_service, *, pipeline,
               check_backend):
        local_view = FederationView(
            [Shard.open(name, path)
             for name, path in shard_paths.items()])

        async def scenario():
            servers = {}
            backends = {}
            for name, path in shard_paths.items():
                server, port = await _start(make_service(name, path))
                servers[name] = server
                backends[name] = f"127.0.0.1:{port}"
            service = await FederationService.create(
                backends=backends, default_source="ihnp4",
                pipeline=pipeline)
            checked = 0
            for source in local_view.sources():
                for dest in self.DESTS:
                    if dest == source:
                        continue
                    try:
                        want = local_view.resolve_with_cost(
                            source, dest, "user")
                    except RouteError as exc:
                        want = type(exc).__name__
                    try:
                        got = await service.view.aresolve_with_cost(
                            source, dest, "user")
                    except RouteError as exc:
                        got = type(exc).__name__
                    if isinstance(want, str):
                        assert want == got, (source, dest)
                    else:
                        assert (got.cost, got.resolution, got.shard,
                                got.via) == \
                            (want.cost, want.resolution, want.shard,
                             want.via), (source, dest)
                    checked += 1
            assert checked > 100
            for shard in service.view.shards.values():
                check_backend(shard.backend)
            for server in servers.values():
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_pipelined_front_end_lockstep_daemons(self, shard_paths):
        """New client, old daemons: the probe gets ERR and the client
        quietly runs the v1 lockstep conversation."""
        def check(backend):
            assert backend._pipeline_ok is False
            assert backend.pipelined == 0
            assert backend.health().split(":")[-2:] == ["0", "0"]

        self._sweep(shard_paths,
                    lambda name, path: _LegacyRouteService(path),
                    pipeline=True, check_backend=check)

    def test_lockstep_front_end_pipelined_daemons(self, shard_paths):
        """Old client (``--no-pipeline``), new daemons: tagged frames
        never go out, answers unchanged."""
        def check(backend):
            assert backend.pipelined == 0

        self._sweep(shard_paths,
                    lambda name, path: RouteService(path),
                    pipeline=False, check_backend=check)

    def test_pipelined_cluster_end_to_end(self, shard_paths):
        """Both sides new: the whole sweep rides tagged frames."""
        def check(backend):
            assert backend._pipeline_ok is True
            assert backend.pipelined > 0

        self._sweep(shard_paths,
                    lambda name, path: RouteService(path),
                    pipeline=True, check_backend=check)


class TestFederationObservability:
    def test_stats_line_has_pipeline_counters(self, shard_paths):
        """The federation's STATS reports its own tagged-request
        counters plus the six-field backend health tokens."""
        async def scenario():
            server, port = await _start(
                RouteService(shard_paths["universities"]))
            service = await FederationService.create(
                shards={"backbone": shard_paths["backbone"]},
                backends={"universities": f"127.0.0.1:{port}"},
                default_source="ihnp4")
            front, fport = await _start(service)
            r, w = await asyncio.open_connection("127.0.0.1", fport)
            w.write(b"@1 ROUTE topaz u\n@2 ROUTE topaz v\n")
            await w.drain()
            await r.readline()
            await r.readline()
            stats = await _lockstep(r, w, "STATS")
            assert "n_pipelined=2" in stats
            assert "inflight_hwm=" in stats
            token = next(t for t in stats.split()
                         if t.startswith("backend_universities="))
            fields = token.partition("=")[2].split(":")
            assert len(fields) == 6
            assert fields[0] == "connected"
            assert int(fields[4]) > 0  # it pipelined to the backend
            w.close()
            front.close()
            await front.wait_closed()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())


class TestWireFuzz:
    """Property fuzz: seeded random interleavings of tagged requests,
    untagged requests, garbage verbs, empty tags, and raw non-UTF-8
    bytes — sent in arbitrarily split chunks — must keep the wire
    framing sound.  The invariants:

    * every tagged request gets exactly one reply frame carrying its
      tag, byte-equal to the in-process oracle's answer, in any order;
    * untagged replies (including the daemon's inline protocol
      errors) come back in exact submission order;
    * an untagged request that reaches the dispatcher drains all
      earlier tagged work first, so its reply appears on the wire
      after every earlier tagged reply;
    * one malformed line produces exactly one ``ERR`` frame — the
      connection and its framing survive.
    """

    EMPTY_TAG_ERR = ("ERR usage tagged request needs a non-empty "
                     "tag: @<tag> VERB ...")
    ENCODING_ERR = "ERR encoding expected UTF-8"

    def test_random_interleavings_keep_framing(self, shard_paths):
        import random

        from repro.service.store import SnapshotReader

        path = shard_paths["backbone"]
        dests = SnapshotReader.open(path).sources()

        async def scenario():
            service = RouteService(path)
            oracle = RouteService(path)
            ostate = oracle.initial_state()
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            for seed in range(3):
                rng = random.Random(seed)
                r, w = await asyncio.open_connection("127.0.0.1",
                                                     port)
                # (wire bytes, kind, tag, expected reply)
                script: list[tuple] = []
                for i in range(120):
                    roll = rng.random()
                    dest = rng.choice(dests)
                    verb = rng.choice(("ROUTE", "EXACT", "FROB"))
                    line = f"{verb} {dest}"
                    if roll < 0.55:
                        expected = await oracle.handle_line(line,
                                                            ostate)
                        script.append((f"@t{i} {line}\n".encode(),
                                       "tagged", f"t{i}", expected))
                    elif roll < 0.85:
                        expected = await oracle.handle_line(line,
                                                            ostate)
                        script.append((f"{line}\n".encode(),
                                       "untagged", None, expected))
                    elif roll < 0.93:
                        script.append((b"@ ROUTE x\n", "inline",
                                       None, self.EMPTY_TAG_ERR))
                    else:
                        script.append((b"\xff\xfe junk\n", "inline",
                                       None, self.ENCODING_ERR))
                # Send the whole script in randomly split chunks, so
                # lines arrive torn across reads.
                data = b"".join(entry[0] for entry in script)
                cut = 0
                while cut < len(data):
                    step = rng.randrange(1, 80)
                    w.write(data[cut:cut + step])
                    await w.drain()
                    cut += step
                replies = []
                for _ in range(len(script)):
                    raw = await asyncio.wait_for(r.readline(), 10)
                    assert raw.endswith(b"\n")
                    replies.append(raw.decode("utf-8").rstrip("\n"))

                tagged_pos: dict[str, int] = {}
                untagged: list[tuple[int, str]] = []
                for pos, reply in enumerate(replies):
                    if reply.startswith("@"):
                        tag, _, rest = reply.partition(" ")
                        assert tag[1:] not in tagged_pos, \
                            f"tag {tag} answered twice"
                        tagged_pos[tag[1:]] = pos
                        continue
                    untagged.append((pos, reply))
                # Every tagged request: one reply, right bytes.
                want_tags = {e[2]: e[3] for e in script
                             if e[1] == "tagged"}
                assert set(tagged_pos) == set(want_tags)
                for pos, reply in enumerate(replies):
                    if reply.startswith("@"):
                        tag, _, rest = reply.partition(" ")
                        assert rest == want_tags[tag[1:]]
                # Untagged replies: exact submission order.
                expected_untagged = [e[3] for e in script
                                     if e[1] != "tagged"]
                assert [text for _, text in untagged] == \
                    expected_untagged
                # Drain barrier: an untagged dispatcher request's
                # reply appears after every earlier tagged reply.
                untagged_iter = iter(untagged)
                for idx, entry in enumerate(script):
                    if entry[1] != "untagged":
                        if entry[1] == "inline":
                            next(untagged_iter)
                        continue
                    pos, _ = next(untagged_iter)
                    earlier = [tagged_pos[e[2]]
                               for e in script[:idx]
                               if e[1] == "tagged"]
                    assert all(p < pos for p in earlier), \
                        f"untagged reply #{idx} overtook tagged work"
                w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())
