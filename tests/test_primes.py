"""Unit tests for prime helpers (hash-table sizing)."""

from repro.adt.primes import (
    fibonacci_primes,
    geometric_primes,
    is_prime,
    next_prime,
)


class TestIsPrime:
    def test_small_primes(self):
        assert [n for n in range(2, 30) if is_prime(n)] == \
            [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_non_primes(self):
        for n in (-7, 0, 1, 4, 9, 15, 21, 25, 27, 100):
            assert not is_prime(n)

    def test_larger_primes(self):
        assert is_prime(7919)
        assert is_prime(104729)
        assert not is_prime(7919 * 7919)

    def test_square_of_prime(self):
        assert not is_prime(49)
        assert not is_prime(121)


class TestNextPrime:
    def test_exact_prime_returned(self):
        assert next_prime(31) == 31
        assert next_prime(2) == 2

    def test_rounds_up(self):
        assert next_prime(32) == 37
        assert next_prime(90) == 97

    def test_low_values(self):
        assert next_prime(0) == 2
        assert next_prime(1) == 2
        assert next_prime(3) == 3


class TestFibonacciPrimes:
    def test_strictly_increasing(self):
        sizes = fibonacci_primes(12)
        assert sizes == sorted(set(sizes))

    def test_all_prime(self):
        assert all(is_prime(p) for p in fibonacci_primes(12))

    def test_golden_ratio_growth(self):
        """Consecutive sizes grow by roughly the golden ratio, the rate
        the paper settled on."""
        sizes = fibonacci_primes(12, start=31)
        ratios = [b / a for a, b in zip(sizes[4:], sizes[5:])]
        for ratio in ratios:
            assert 1.3 < ratio < 2.0

    def test_count_zero(self):
        assert fibonacci_primes(0) == []

    def test_count_one(self):
        assert fibonacci_primes(1, start=31) == [31]


class TestGeometricPrimes:
    def test_doubling_growth(self):
        sizes = geometric_primes(8, start=31, factor=2.0)
        for a, b in zip(sizes, sizes[1:]):
            assert b >= 2 * a  # next prime at or above the doubled size

    def test_all_prime(self):
        assert all(is_prime(p) for p in geometric_primes(8))

    def test_empty(self):
        assert geometric_primes(0) == []
