"""Printing-phase tests: record selection, ordering, formatting."""

from repro import HeuristicConfig, Pathalias
from repro.core.mapper import Mapper
from repro.core.printer import print_routes
from repro.graph.build import build_graph
from repro.parser.grammar import parse_text


def table_of(text: str, source: str):
    graph = build_graph([("d.map", parse_text(text))])
    return print_routes(Mapper(graph).run(source))


class TestOrdering:
    def test_sorted_by_cost_then_name(self):
        table = table_of("a z(10), m(10), b(5)", "a")
        assert [r.name for r in table] == ["a", "b", "m", "z"]

    def test_costs_monotone(self, paper_map):
        table = Pathalias().run_text(paper_map, localhost="unc")
        costs = [r.cost for r in table]
        assert costs == sorted(costs)


class TestSelection:
    def test_nets_hidden_domains_shown(self):
        table = table_of("a NET(5)\nNET = {m}(5)\n"
                         "a .edu(5)\n.edu = {campus}", "a")
        names = {r.name for r in table}
        assert "NET" not in names
        assert ".edu" in names
        assert "m" in names

    def test_private_hidden(self):
        graph = build_graph([
            ("f", parse_text("private {p}\na p(5)\np b(5)", "f"))])
        table = print_routes(Mapper(graph).run("a"))
        assert {r.name for r in table} == {"a", "b"}

    def test_deleted_absent(self):
        table = table_of("a b(5), c(5)\ndelete {b}", "a")
        assert {r.name for r in table} == {"a", "c"}

    def test_unreachable_listed(self):
        graph = build_graph([("f", parse_text("a b(5)\nx y(5)"))])
        mapper = Mapper(graph, HeuristicConfig(infer_back_links=False))
        table = print_routes(mapper.run("a"))
        assert set(table.unreachable) == {"x", "y"}


class TestFormats:
    def test_format_paper_layout(self):
        table = table_of("a b(5)", "a")
        assert table.format_paper() == "0\ta\t%s\n5\tb\tb!%s"

    def test_format_tab_layout(self):
        table = table_of("a b(5)", "a")
        assert table.format_tab() == "a\t%s\nb\tb!%s"

    def test_record_formats(self):
        table = table_of("a b(5)", "a")
        record = table.lookup("b")
        assert record.format_paper() == "5\tb\tb!%s"
        assert record.format_tab() == "b\tb!%s"

    def test_len_iter(self):
        table = table_of("a b(5), c(6)", "a")
        assert len(table) == 3
        assert len(list(table)) == 3

    def test_address_missing_host(self):
        table = table_of("a b(5)", "a")
        assert table.address("ghost", "u") is None
        assert table.route("ghost") is None
