"""Property-based tests (hypothesis) on the core substrates.

Invariants pinned here:
* the heap behaves exactly like a sorted reference under arbitrary
  insert/decrease/extract interleavings;
* the hash table is observationally a dict, under every secondary-hash
  and growth-policy combination;
* both scanners agree token-for-token on arbitrary generated maps;
* declarations survive a writer -> scanner -> parser round trip;
* the mapper agrees with networkx's Dijkstra on arbitrary random graphs
  (heuristics off), and the dense O(v^2) variant agrees with the sparse
  one *with* heuristics on;
* allocators never report impossible numbers (system < live peak).
"""

from __future__ import annotations

import networkx as nx
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adt.arena import ArenaAllocator
from repro.adt.freelist import FreeListAllocator
from repro.adt.hashtable import GrowthPolicy, HashTable, SecondaryHash
from repro.adt.heap import BinaryHeap
from repro.adt.trace import churning_trace, pathalias_trace
from repro.config import HeuristicConfig
from repro.core.dense import DenseMapper
from repro.core.mapper import Mapper
from repro.graph.build import build_graph
from repro.netsim.writer import render_file
from repro.parser.ast import Direction, HostDecl, LinkSpec, NetDecl
from repro.parser.grammar import parse_text
from repro.parser.lexgen import LexScanner
from repro.parser.scanner import Scanner

# -- strategies ---------------------------------------------------------------

host_names = st.from_regex(r"[a-z][a-z0-9-]{0,8}", fullmatch=True).filter(
    lambda s: s not in {"private", "dead", "adjust", "delete", "file",
                        "gatewayed"} and not s.endswith("-"))

link_specs = st.builds(
    LinkSpec,
    name=host_names,
    op=st.sampled_from("!@:%"),
    direction=st.sampled_from(list(Direction)),
    cost=st.one_of(st.none(), st.integers(min_value=0, max_value=99999)),
)

host_decls = st.builds(
    HostDecl,
    name=host_names,
    links=st.lists(link_specs, min_size=1, max_size=6,
                   unique_by=lambda s: s.name).map(tuple),
)

net_decls = st.builds(
    NetDecl,
    name=host_names.map(str.upper),
    members=st.lists(host_names, min_size=1, max_size=5,
                     unique=True).map(tuple),
    op=st.sampled_from("!@"),
    direction=st.sampled_from(list(Direction)),
    cost=st.one_of(st.none(), st.integers(min_value=0, max_value=9999)),
)


# -- heap ---------------------------------------------------------------------


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 10_000)),
                max_size=120))
def test_heap_matches_reference(ops):
    """Insert/decrease/extract in arbitrary order == sorted reference."""
    heap: BinaryHeap[int] = BinaryHeap()
    reference: dict[int, int] = {}
    for item, priority in ops:
        if item in reference:
            if priority <= reference[item]:
                heap.decrease_key(item, priority)
                reference[item] = priority
        else:
            heap.insert(item, priority)
            reference[item] = priority
    heap.check_invariant()
    extracted = []
    while heap:
        item, priority = heap.extract_min()
        assert reference.pop(item) == priority
        extracted.append(priority)
    assert extracted == sorted(extracted)
    assert not reference


@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=200))
def test_heap_is_a_priority_queue(priorities):
    heap: BinaryHeap[int] = BinaryHeap()
    for index, priority in enumerate(priorities):
        heap.insert(index, priority)
    out = [heap.extract_min()[1] for _ in range(len(priorities))]
    assert out == sorted(priorities)


# -- hash table ---------------------------------------------------------------


@given(st.dictionaries(st.text(min_size=1, max_size=20),
                       st.integers(), max_size=200),
       st.sampled_from(list(SecondaryHash)),
       st.sampled_from(list(GrowthPolicy)))
def test_hashtable_is_a_dict(model, secondary, growth):
    table = HashTable(initial_size=7, secondary=secondary, growth=growth)
    for key, value in model.items():
        table.insert(key, value)
    assert len(table) == len(model)
    assert dict(table.items()) == model
    for key in model:
        assert key in table


@given(st.lists(st.text(min_size=1, max_size=12), min_size=1,
                unique=True, max_size=300))
def test_hashtable_load_factor_bounded(keys):
    table = HashTable(initial_size=5)
    for key in keys:
        table.insert(key, None)
        assert table.load_factor <= 0.79 + 1e-9


# -- scanners -----------------------------------------------------------------


@given(st.lists(st.one_of(host_decls, net_decls), min_size=1,
                max_size=8))
@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_scanners_agree_on_rendered_maps(decls):
    text = render_file(list(decls))
    assert Scanner(text, "t").tokens() == LexScanner(text, "t").tokens()


@given(st.lists(host_decls, min_size=1, max_size=8))
@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_writer_parser_roundtrip(decls):
    text = render_file(list(decls))
    parsed = parse_text(text, "t")
    originals = list(decls)
    assert len(parsed) == len(originals)
    for original, reparsed in zip(originals, parsed):
        assert isinstance(reparsed, HostDecl)
        assert reparsed.name == original.name
        got = [(l.name, l.op, l.direction, l.cost) for l in reparsed.links]
        want = [(l.name, l.op, l.direction, l.cost)
                for l in original.links]
        assert got == want


# -- mapper vs networkx -------------------------------------------------------


@st.composite
def random_graphs(draw):
    """A random sparse digraph as map text plus an edge list."""
    node_count = draw(st.integers(min_value=2, max_value=14))
    nodes = [f"n{i}" for i in range(node_count)]
    edges = draw(st.lists(
        st.tuples(st.integers(0, node_count - 1),
                  st.integers(0, node_count - 1),
                  st.integers(1, 1000)),
        min_size=1, max_size=40))
    lines = []
    seen = set()
    clean_edges = []
    for a, b, cost in edges:
        if a == b or (a, b) in seen:
            continue
        seen.add((a, b))
        clean_edges.append((nodes[a], nodes[b], cost))
        lines.append(f"{nodes[a]} {nodes[b]}({cost})")
    # Ensure the source declares something.
    lines.append(f"{nodes[0]} {nodes[1]}(999983)")
    clean_edges.append((nodes[0], nodes[1], 999983))
    return "\n".join(lines), clean_edges, nodes[0]


@given(random_graphs())
@settings(max_examples=80, deadline=None)
def test_mapper_agrees_with_networkx(data):
    text, edges, source = data
    graph = build_graph([("t", parse_text(text))])
    cfg = HeuristicConfig(infer_back_links=False, mixed_penalty=0,
                          gateway_penalty=0, domain_relay_penalty=0,
                          subdomain_up_penalty=0)
    result = Mapper(graph, cfg).run(source)

    reference = nx.DiGraph()
    for a, b, cost in edges:
        if reference.has_edge(a, b):
            # duplicate links: pathalias keeps the cheaper one
            cost = min(cost, reference[a][b]["weight"])
        reference.add_edge(a, b, weight=cost)
    expected = nx.single_source_dijkstra_path_length(reference, source)
    for node in reference.nodes:
        assert result.cost(node) == expected.get(node), node


@given(random_graphs())
@settings(max_examples=40, deadline=None)
def test_dense_and_sparse_identical(data):
    """The O(v^2) baseline must match the heap variant label for label,
    heuristics included."""
    text, _, source = data
    cfg = HeuristicConfig(infer_back_links=False)
    sparse_graph = build_graph([("t", parse_text(text))])
    dense_graph = build_graph([("t", parse_text(text))])
    sparse = Mapper(sparse_graph, cfg).run(source)
    dense = DenseMapper(dense_graph, cfg).run(source)
    for node in sparse_graph.nodes:
        s_label = sparse.best(node)
        d_label = dense.best(dense_graph.require(node.name))
        if s_label is None:
            assert d_label is None
        else:
            assert d_label is not None
            assert s_label.cost == d_label.cost
            s_parent = s_label.parent.node.name if s_label.parent else None
            d_parent = d_label.parent.node.name if d_label.parent else None
            assert s_parent == d_parent


# -- allocators ---------------------------------------------------------------


@given(st.integers(10, 300), st.integers(0, 2 ** 31))
@settings(max_examples=30, deadline=None)
def test_allocators_account_consistently(nodes, seed)  :
    trace = pathalias_trace(nodes=nodes, links=nodes * 3, seed=seed)
    trace.validate()
    for allocator in (ArenaAllocator(), FreeListAllocator()):
        stats = allocator.run(trace)
        assert stats.allocated_bytes == trace.total_allocated()
        assert stats.system_bytes >= 0
        assert stats.system_bytes + 4096 >= trace.live_bytes_peak()


@given(st.integers(50, 500), st.integers(0, 2 ** 31))
@settings(max_examples=20, deadline=None)
def test_freelist_never_loses_space(operations, seed):
    trace = churning_trace(operations=operations, seed=seed)
    allocator = FreeListAllocator()
    allocator.run(trace)
    free_bytes = sum(b.size for b in allocator._free)
    assert free_bytes <= allocator.stats.system_bytes
