"""Property-based tests on whole-pipeline route invariants.

Random maps with the full feature mix — hosts, nets, aliases, domains —
must always produce a route table where:

* every route is a well-formed format string (exactly one ``%s``);
* printed costs equal mapping costs;
* alias pairs cost the same;
* every printed route actually delivers over the same graph when every
  host parses route-first;
* printed + hidden + unreachable accounts for every node.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import HeuristicConfig
from repro.core.mapper import Mapper
from repro.core.printer import print_routes
from repro.graph.build import build_graph
from repro.mailer.address import MailerStyle
from repro.mailer.delivery import Network
from repro.parser.grammar import parse_text

settings_kwargs = dict(max_examples=40, deadline=None,
                       suppress_health_check=[HealthCheck.too_slow])


@st.composite
def featureful_maps(draw) -> str:
    """Small random maps mixing every declaration form."""
    host_count = draw(st.integers(min_value=3, max_value=10))
    hosts = [f"h{i}" for i in range(host_count)]
    lines = []
    # A ring so everything is reachable, plus random chords.
    for i, host in enumerate(hosts):
        cost = draw(st.integers(min_value=1, max_value=5000))
        lines.append(f"{host} {hosts[(i + 1) % host_count]}({cost})")
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        a = draw(st.sampled_from(hosts))
        b = draw(st.sampled_from(hosts))
        if a != b:
            op = draw(st.sampled_from(["", "@"]))
            cost = draw(st.integers(min_value=1, max_value=5000))
            lines.append(f"{a} {op}{b}({cost})")
    # Maybe a net over a sample of hosts.
    if draw(st.booleans()) and host_count >= 3:
        members = hosts[: draw(st.integers(2, host_count))]
        cost = draw(st.integers(min_value=1, max_value=200))
        lines.append(f"NET = {{{', '.join(members)}}}({cost})")
    # Maybe a domain with one member.
    if draw(st.booleans()):
        owner = draw(st.sampled_from(hosts))
        lines.append(f".dom = {{{owner}}}")
    # Maybe an alias.
    if draw(st.booleans()):
        target = draw(st.sampled_from(hosts))
        lines.append(f"{target} = nick{target}")
    return "\n".join(lines)


def _run(text: str):
    graph = build_graph([("prop", parse_text(text))])
    result = Mapper(graph, HeuristicConfig()).run("h0")
    return graph, result, print_routes(result)


@given(featureful_maps())
@settings(**settings_kwargs)
def test_routes_are_wellformed(text):
    _, result, table = _run(text)
    for record in table:
        assert record.route.count("%s") == 1
        assert record.cost >= 0
        assert record.name


@given(featureful_maps())
@settings(**settings_kwargs)
def test_costs_match_labels(text):
    _, result, table = _run(text)
    for record in table:
        assert record.cost == result.best(record.node).cost


@given(featureful_maps())
@settings(**settings_kwargs)
def test_alias_pairs_cost_the_same(text):
    _, result, table = _run(text)
    by_name = {r.name: r for r in table}
    for name, record in by_name.items():
        if name.startswith("nick"):
            partner = by_name.get(name[len("nick"):])
            if partner is not None:
                assert record.cost == partner.cost


def _right_edge_midpath(result, node) -> bool:
    """True when the chosen path takes an @-style (RIGHT) hop that is
    *not* its final text-producing edge.  Such paths yield flat routes
    like ``h1!h3!%s@h2`` whose text loses the hop ordering — a genuine
    limitation of relative addressing that the paper's mixed-syntax
    penalty exists to minimize (and its PROBLEMS section owns up to)."""
    from repro.graph.node import REAL_KINDS
    from repro.parser.ast import Direction

    label = result.best(node)
    directions = []
    while label is not None and label.link is not None:
        if label.link.kind in REAL_KINDS:
            directions.append(label.link.direction)
        label = label.parent
    directions.reverse()
    return any(d is Direction.RIGHT for d in directions[:-1])


@given(featureful_maps())
@settings(**settings_kwargs)
def test_every_route_delivers(text):
    """Every printed route reaches its host — under the origin's own
    convention — except the known-broken mid-path-@ shape (see
    _right_edge_midpath).  A trailing-@ route like ``a!%s@gw`` is mail
    the origin hands to its @-transport first, so the origin may speak
    either convention; relays are heuristic."""
    graph, result, table = _run(text)
    heuristic_world = Network(graph,
                              default_style=MailerStyle.HEURISTIC)
    rfc_origin_world = Network(
        graph, styles={"h0": MailerStyle.RFC822_RIGID},
        default_style=MailerStyle.HEURISTIC)
    for record in table:
        if record.node.netlike:
            continue  # domains are placeholders, not machines
        if _right_edge_midpath(result, record.node):
            continue  # flat text cannot express this path: skip
        outcome = heuristic_world.deliver_route("h0", record.route)
        if not outcome.delivered:
            outcome = rfc_origin_world.deliver_route("h0", record.route)
        assert outcome.delivered, (record.name, record.route,
                                   outcome.failure)


@given(featureful_maps())
@settings(**settings_kwargs)
def test_accounting_covers_every_node(text):
    graph, result, table = _run(text)
    printed = {r.node.index for r in table}
    unreachable = {n.index for n in result.unreachable()}
    hidden = set()
    for node in graph.nodes:
        if node.index in printed or node.index in unreachable:
            continue
        # Only placeholders and private hosts may be silent.
        assert node.is_net or node.is_domain or node.private, node
        hidden.add(node.index)
    assert printed | unreachable | hidden == \
        {n.index for n in graph.nodes}
