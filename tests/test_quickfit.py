"""Quick-fit allocator tests."""

import pytest

from repro.adt.quickfit import QUICK_CLASSES, QuickFitAllocator
from repro.adt.trace import churning_trace, pathalias_trace


class TestQuickLists:
    def test_small_alloc_served(self):
        allocator = QuickFitAllocator()
        allocator.alloc(0, 16)
        assert allocator.stats.allocated_bytes == 16

    def test_free_parks_on_quick_list(self):
        allocator = QuickFitAllocator()
        allocator.alloc(0, 16)
        allocator.free(0)
        assert allocator.parked_bytes == 16

    def test_realloc_reuses_quick_block(self):
        allocator = QuickFitAllocator()
        allocator.alloc(0, 16)
        allocator.free(0)
        system_before = allocator.stats.system_bytes
        allocator.alloc(1, 16)
        assert allocator.stats.system_bytes == system_before
        assert allocator.parked_bytes == 0

    def test_quick_reuse_is_cheap(self):
        allocator = QuickFitAllocator()
        allocator.alloc(0, 16)
        allocator.free(0)
        steps_before = allocator.stats.steps
        allocator.alloc(1, 16)
        # A quick-list hit costs O(1) — no free-list scan.
        assert allocator.stats.steps - steps_before <= 2

    def test_class_rounding_waste_tracked(self):
        allocator = QuickFitAllocator()
        allocator.alloc(0, 13)  # class 16
        assert allocator.stats.wasted_bytes >= 3

    def test_large_alloc_falls_back(self):
        allocator = QuickFitAllocator()
        big = max(QUICK_CLASSES) + 100
        allocator.alloc(0, big)
        allocator.free(0)
        assert allocator.parked_bytes == 0  # went through the backing

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            QuickFitAllocator().alloc(0, 0)


class TestTraceReplay:
    def test_accounting_consistent(self):
        trace = pathalias_trace(nodes=200, links=600, seed=11)
        stats = QuickFitAllocator().run(trace)
        assert stats.allocated_bytes == trace.total_allocated()

    def test_faster_than_freelist_on_churn(self):
        """Quick fit's selling point: churny small-object traffic."""
        from repro.adt.freelist import FreeListAllocator

        trace = churning_trace(operations=3000, seed=12)
        quick = QuickFitAllocator().run(trace)
        freelist = FreeListAllocator().run(trace)
        assert quick.steps < freelist.steps

    def test_hoards_space_relative_to_freelist(self):
        """The trade-off: quick lists never give memory back."""
        trace = churning_trace(operations=3000, seed=13)
        quick = QuickFitAllocator()
        quick.run(trace)
        # After everything is freed, bytes remain parked.
        assert quick.parked_bytes > 0
