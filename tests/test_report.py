"""Run-report rendering tests."""

from repro import Pathalias
from repro.core.report import run_report

from tests.conftest import PAPER_1981_MAP


def detailed(text: str, localhost: str):
    return Pathalias().run_detailed([("d.map", text)], localhost)


class TestRunReport:
    def test_sections_present(self):
        result = detailed(PAPER_1981_MAP, "unc")
        text = run_report(result)
        for heading in ("network:", "phases (seconds):", "mapping:",
                        "routes:", "map checks:"):
            assert heading in text

    def test_source_named(self):
        result = detailed(PAPER_1981_MAP, "unc")
        assert "source unc" in run_report(result)

    def test_counts_consistent(self):
        result = detailed(PAPER_1981_MAP, "unc")
        text = run_report(result)
        assert "7 printed, 0 unreachable" in text
        assert "nodes 8" in text  # 7 hosts + the ARPA net node

    def test_busiest_relay_is_duke(self):
        result = detailed(PAPER_1981_MAP, "unc")
        text = run_report(result)
        relay_section = text.split("busiest relays:")[1]
        assert relay_section.strip().splitlines()[0].split()[0] == "duke"

    def test_checks_optional(self):
        result = detailed(PAPER_1981_MAP, "unc")
        assert "map checks:" not in run_report(result,
                                               include_checks=False)

    def test_unreachable_listed(self):
        from repro import HeuristicConfig

        result = Pathalias(
            heuristics=HeuristicConfig(infer_back_links=False)
        ).run_detailed([("m", "a b(10)\nlost far(10)")], "a")
        text = run_report(result)
        assert "lost" in text

    def test_penalty_counters_shown(self):
        result = detailed("a @b(10)\nb c(5)", "a")
        text = run_report(result)
        assert "penalties: mixed 1" in text
