"""The unified Resolver stack: one protocol, four lookup surfaces.

The acceptance bar for the resolver refactor: the in-process snapshot
surface, the daemon client, the federation surface, and the mailer's
in-memory table all satisfy the same
:class:`repro.service.resolver.Resolver` protocol, and the paper's
domain-suffix search exists in exactly one implementation
(:class:`SuffixResolver`) that all in-process surfaces share.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.pathalias import Pathalias
from repro.errors import RouteError
from repro.mailer.router import MailRouter
from repro.mailer.routedb import RouteDatabase
from repro.service.daemon import DaemonRouteDatabase
from repro.service.federation import FederatedRouteDatabase
from repro.service.resolver import (
    Resolution,
    Resolver,
    SuffixResolver,
    domain_suffixes,
)
from repro.service.shard import FederationResolver, FederationView, Shard
from repro.service.store import (
    SnapshotReader,
    SnapshotResolver,
    SnapshotTable,
    build_snapshot,
)

from tests.conftest import DOMAIN_TREE_MAP

DATA = Path(__file__).parent / "data"

MAP = """\
a\tb(10), c(100)
b\ta(10), c(10)
c\tb(10), a(100), d(10)
d\tc(10)
"""


@pytest.fixture(scope="module")
def reader(tmp_path_factory):
    out = tmp_path_factory.mktemp("resolver") / "r.snap"
    build_snapshot(Pathalias().build([("d.map", MAP)]), out)
    return SnapshotReader.open(out)


@pytest.fixture(scope="module")
def view(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("resolver-fed")
    shards = []
    for name in ("backbone", "universities"):
        out = tmp / f"{name}.snap"
        text = (DATA / f"d.{name}").read_text()
        build_snapshot(Pathalias().build([(f"d.{name}", text)]), out)
        shards.append(Shard.open(name, out))
    return FederationView(shards)


class TestProtocolMembership:
    """All four lookup surfaces satisfy the Resolver protocol."""

    def test_in_process_snapshot_surface(self, reader):
        assert isinstance(reader.resolver("a"), Resolver)
        assert isinstance(reader.resolver("a"), SnapshotResolver)

    def test_daemon_client(self):
        # construction opens no socket, so the shape check is free
        assert isinstance(
            DaemonRouteDatabase(("127.0.0.1", 1)), Resolver)

    def test_federation_surfaces(self, view):
        assert isinstance(view.resolver("ihnp4"), Resolver)
        assert isinstance(view.resolver("ihnp4"), FederationResolver)
        assert isinstance(
            FederatedRouteDatabase(("127.0.0.1", 1)), Resolver)

    def test_mailer_route_database(self):
        assert isinstance(RouteDatabase({}), Resolver)

    def test_suffix_search_is_shared(self, reader):
        """One implementation of the paper's lookup procedure: the
        hot path is the compiled automaton, but both surfaces keep the
        inherited walk reachable as the dict-dispatch oracle (the
        differential tests hold them byte-identical)."""
        assert isinstance(reader.table("a"), SuffixResolver)
        assert isinstance(RouteDatabase({}), SuffixResolver)
        walk = SuffixResolver.resolve_with_cost
        assert SnapshotTable.resolve_with_cost is not walk
        assert RouteDatabase.resolve_with_cost is not walk
        assert SnapshotTable.resolve_with_cost_dict is walk
        assert RouteDatabase.resolve_with_cost_dict is walk
        assert RouteDatabase.resolve is SuffixResolver.resolve
        assert SnapshotTable.resolve is SuffixResolver.resolve


class TestSnapshotResolver:
    def test_resolves_like_the_table(self, reader):
        resolver = reader.resolver("a")
        cost, res = resolver.resolve_with_cost("d", "user")
        assert (cost, res) == \
            reader.table("a").resolve_with_cost("d", "user")
        assert cost == 30
        assert res.address == "b!c!d!user"
        assert resolver.resolve("d").address == "b!c!d!%s"
        assert resolver.resolve_bang("d!user").address == "b!c!d!user"

    def test_source_table_and_stats(self, reader):
        resolver = reader.resolver("a")
        assert resolver.source_table() == "a"
        stats = resolver.stats()
        assert stats["format"] == "2"
        assert stats["sources"] == "4"
        assert int(stats["snapshot_bytes"]) == reader.size

    def test_miss_raises_route_error(self, reader):
        with pytest.raises(RouteError):
            reader.resolver("a").resolve("nowhere", "u")


class TestFederationResolver:
    def test_resolves_like_the_view(self, view):
        resolver = view.resolver("ihnp4")
        cost, res = resolver.resolve_with_cost("topaz", "user")
        fed = view.resolve_with_cost("ihnp4", "topaz", "user")
        assert (cost, res) == (fed.cost, fed.resolution)
        assert cost == 650
        assert resolver.source_table() == "ihnp4"

    def test_stats_report_shard_formats(self, view):
        stats = view.resolver("ihnp4").stats()
        assert stats["shards"] == "2"
        assert stats["formats"] == "2,2"
        assert int(stats["tables"]) == 21


class TestRouteDatabaseCosts:
    def test_from_table_carries_costs_and_source(self):
        from repro.core.fastmap import map_routes
        from repro.graph.compact import CompactGraph

        graph = Pathalias().build([("d.map", MAP)])
        table = map_routes(CompactGraph.compile(graph), "a")
        db = RouteDatabase.from_table(table)
        cost, res = db.resolve_with_cost("d", "user")
        assert cost == 30
        assert res.address == "b!c!d!user"
        assert db.source_table() == "a"
        assert db.stats()["entries"] == "4"  # a b c d (self included)

    def test_dict_only_databases_report_zero_cost(self):
        db = RouteDatabase({"x": "x!%s"})
        cost, res = db.resolve_with_cost("x", "u")
        assert cost == 0
        assert res.address == "x!u"
        assert db.source_table() is None

    def test_suffix_semantics_unchanged(self):
        graph = Pathalias().build([("d.domains", DOMAIN_TREE_MAP)])
        from repro.core.fastmap import map_routes
        from repro.graph.compact import CompactGraph

        table = map_routes(CompactGraph.compile(graph), "local")
        db = RouteDatabase.from_table(table)
        res = db.resolve("caip.rutgers.edu", "pleasant")
        assert isinstance(res, Resolution)
        assert res.matched == "caip.rutgers.edu"


class TestMailRouterOnResolvers:
    def test_resolve_with_cost_through_db(self, reader):
        router = MailRouter("a", reader.table("a").database())
        cost, res = router.resolve_with_cost("d", "user")
        assert cost == 30
        assert res.address == "b!c!d!user"

    def test_snapshot_database_carries_costs(self, reader):
        db = reader.table("a").database()
        assert db.resolve_with_cost("d", "u")[0] == 30
        assert db.source_table() == "a"


class TestDomainSuffixes:
    def test_sequence(self):
        assert domain_suffixes("caip.rutgers.edu") == [
            "caip.rutgers.edu", ".rutgers.edu", ".edu"]

    def test_reexported_from_mailer(self):
        import repro.mailer.routedb as routedb
        import repro.service.resolver as resolver

        assert routedb.domain_suffixes is resolver.domain_suffixes
        assert routedb.Resolution is resolver.Resolution
