"""Route-optimization and header-principle tests."""

import pytest

from repro.errors import RouteError
from repro.mailer.address import MailerStyle
from repro.mailer.rewrite import (
    Header,
    HeaderRewriter,
    OptimizeMode,
    RouteOptimizer,
)
from repro.mailer.routedb import RouteDatabase


@pytest.fixture
def db() -> RouteDatabase:
    return RouteDatabase({
        "duke": "duke!%s",
        "research": "duke!research!%s",
        "ucbvax": "duke!research!ucbvax!%s",
        "seismo": "duke!seismo!%s",
    })


class TestRightmost:
    def test_long_path_shortened(self, db):
        """The 'hideously long UUCP path' case: re-route to the
        rightmost known host."""
        opt = RouteOptimizer(db, localhost="unc")
        result = opt.optimize("a!b!c!ucbvax!user")
        assert result.address == "duke!research!ucbvax!user"
        assert result.pivot == "ucbvax"
        assert result.savings == 3

    def test_unknown_tail_kept_relative(self, db):
        opt = RouteOptimizer(db, localhost="unc")
        result = opt.optimize("a!seismo!mcvax!piet")
        assert result.address == "duke!seismo!mcvax!piet"
        assert result.pivot == "seismo"

    def test_no_known_host_raises(self, db):
        opt = RouteOptimizer(db, localhost="unc")
        with pytest.raises(RouteError):
            opt.optimize("x!y!user")


class TestFirstHop:
    def test_routes_to_first_site(self, db):
        opt = RouteOptimizer(db, localhost="unc",
                             mode=OptimizeMode.FIRST_HOP)
        result = opt.optimize("research!ucbvax!user")
        assert result.address == "duke!research!ucbvax!user"
        assert result.pivot == "research"
        assert result.savings == 0


class TestLoopPreservation:
    def test_loop_test_not_optimized(self, db):
        """'an overly-enthusiastic optimizer can eliminate them
        altogether'."""
        opt = RouteOptimizer(db, localhost="unc")
        address = "duke!unc!duke!unc!user"
        result = opt.optimize(address)
        assert result.address == address
        assert result.savings == 0

    def test_loops_optimized_when_disabled(self, db):
        opt = RouteOptimizer(db, localhost="unc", preserve_loops=False)
        result = opt.optimize("duke!unc!duke!user")
        # rightmost known host is the last duke
        assert result.address == "duke!user"

    def test_off_mode_trusts_user(self, db):
        opt = RouteOptimizer(db, localhost="unc", mode=OptimizeMode.OFF)
        address = "a!b!ucbvax!user"
        assert opt.optimize(address).address == address


class TestHeaderRewriter:
    def test_uucp_return_path_prepends(self):
        rewriter = HeaderRewriter("cbosgd", MailerStyle.BANG_RIGID)
        assert rewriter.extend_return_path("mark") == "cbosgd!mark"
        assert rewriter.extend_return_path("a!mark") == "cbosgd!a!mark"

    def test_rfc_return_path_absolute(self):
        rewriter = HeaderRewriter("mit-ai", MailerStyle.RFC822_RIGID)
        assert rewriter.extend_return_path("user") == "user@mit-ai"

    def test_rfc_return_path_percent_encapsulation(self):
        """'A host must not generate a return path that would be
        rejected if used' — the RFC822 host keeps its syntax."""
        rewriter = HeaderRewriter("relay", MailerStyle.RFC822_RIGID)
        out = rewriter.extend_return_path("user@origin")
        assert out == "user%origin@relay"
        # And it parses under the host's own rules:
        from repro.mailer.address import next_hop
        host, rest = next_hop(out, MailerStyle.RFC822_RIGID)
        assert host == "relay"

    def test_relay_does_not_translate(self):
        relay = HeaderRewriter("mid", MailerStyle.BANG_RIGID,
                               is_gateway=False)
        header = relay.forward_header(
            Header(sender="alice", recipient="mid!far!user@x"),
            rest="far!user@x")
        assert header.recipient == "far!user@x"  # untouched

    def test_gateway_translates_bang_to_rfc(self):
        gateway = HeaderRewriter("gw", MailerStyle.RFC822_RIGID,
                                 is_gateway=True)
        assert gateway.translate("a!b!user") == "user%b@a"

    def test_gateway_translates_rfc_to_bang(self):
        gateway = HeaderRewriter("gw", MailerStyle.BANG_RIGID,
                                 is_gateway=True)
        assert gateway.translate("user@host") == "host!user"

    def test_translate_passthrough_when_already_native(self):
        gateway = HeaderRewriter("gw", MailerStyle.BANG_RIGID,
                                 is_gateway=True)
        assert gateway.translate("a!b!user") == "a!b!user"
