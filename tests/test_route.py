"""Route-construction tests: the PRINTING THE ROUTES figures."""

from repro.core.mapper import Mapper
from repro.core.printer import print_routes
from repro.core.route import splice
from repro.graph.build import build_graph
from repro.parser.ast import Direction
from repro.parser.grammar import parse_text

from tests.conftest import DOMAIN_TREE_MAP


def routes_of(text: str, source: str) -> dict[str, str]:
    graph = build_graph([("d.map", parse_text(text))])
    table = print_routes(Mapper(graph).run(source))
    return {r.name: r.route for r in table}


class TestSplice:
    def test_left(self):
        assert splice("%s", "duke", "!", Direction.LEFT) == "duke!%s"

    def test_right(self):
        assert splice("%s", "mit-ai", "@", Direction.RIGHT) == "%s@mit-ai"

    def test_nested_left(self):
        assert splice("duke!%s", "phs", "!", Direction.LEFT) == \
            "duke!phs!%s"

    def test_mixed(self):
        assert splice("ucbvax!%s", "mit-ai", "@", Direction.RIGHT) == \
            "ucbvax!%s@mit-ai"

    def test_only_first_marker_replaced(self):
        # %s never legitimately appears twice, but be exact anyway.
        assert splice("a!%s", "b", "!", Direction.LEFT) == "a!b!%s"


class TestPlainRoutes:
    def test_root_is_percent_s(self):
        routes = routes_of("a b(10)", "a")
        assert routes["a"] == "%s"

    def test_chain(self):
        routes = routes_of("a b(10)\nb c(10)", "a")
        assert routes["c"] == "b!c!%s"

    def test_right_direction_operator(self):
        routes = routes_of("a @b(10)", "a")
        assert routes["b"] == "%s@b"

    def test_custom_operators(self):
        routes = routes_of("a b%(10)\nb :c(5)", "a")
        # postfix % => host LEFT of '%'; prefix ':' => host RIGHT of ':'
        assert routes["b"] == "b%%s"
        assert routes["c"] == splice("b%%s", "c", ":", Direction.RIGHT)


class TestSiemensGypsyFigure:
    """The tree fragment figure: princeton -> siemens (!) -> gypsy (@)."""

    def test_figure_routes(self):
        routes = routes_of(
            "princeton siemens!(10)\nsiemens @gypsy(10)", "princeton")
        assert routes["siemens"] == "siemens!%s"
        assert routes["gypsy"] == "siemens!%s@gypsy"


class TestAliasRoutes:
    def test_alias_same_route(self):
        routes = routes_of("a princeton(10)\nprinceton = fun", "a")
        assert routes["princeton"] == "princeton!%s"
        assert routes["fun"] == "princeton!%s"

    def test_predecessor_name_used(self):
        """nosc/noscvax: the name in the path is the one the
        predecessor understands."""
        routes = routes_of(
            "a noscvax(10)\nnosc = noscvax\nnoscvax w(10)", "a")
        assert routes["nosc"] == "noscvax!%s"
        assert routes["w"] == "noscvax!w!%s"


class TestNetworkRoutes:
    def test_net_not_printed(self):
        routes = routes_of("a NET(10)\nNET = {m}(20)", "a")
        assert "NET" not in routes
        assert routes["m"] == "m!%s"

    def test_member_uses_entry_operator(self):
        """Different gateways between two networks may use different
        syntax: the operator is the one met when entering the net."""
        routes = routes_of("a ARPA(10)\nARPA = @{m}(20)", "a")
        # entry link a->ARPA is plain (!, LEFT): exits use '!' LEFT.
        assert routes["m"] == "m!%s"

    def test_member_entry_via_member_edge(self):
        routes = routes_of("a m1(10)\nARPA = @{m1, m2}(20)", "a")
        # entered via m1's member edge, declared @ RIGHT.
        assert routes["m2"] == "m1!%s@m2"

    def test_paper_1981_arpa_route(self):
        routes = routes_of(
            "unc duke(500)\nduke research(2500)\n"
            "research ucbvax(300)\nARPA = @{mit-ai, ucbvax}(95)", "unc")
        assert routes["mit-ai"] == "duke!research!ucbvax!%s@mit-ai"


class TestDomainRoutes:
    def test_figure_seismo_caip(self):
        """The domain-tree figure: caip.rutgers.edu via seismo."""
        routes = routes_of(DOMAIN_TREE_MAP, "local")
        assert routes["caip.rutgers.edu"] == "seismo!caip.rutgers.edu!%s"

    def test_top_level_domain_printed_with_gateway_route(self):
        routes = routes_of(DOMAIN_TREE_MAP, "local")
        assert routes[".edu"] == "seismo!%s"

    def test_subdomains_not_printed(self):
        routes = routes_of(DOMAIN_TREE_MAP, "local")
        assert ".rutgers.edu" not in routes
        assert ".rutgers" not in routes

    def test_hosts_beyond_domain_member(self):
        routes = routes_of(DOMAIN_TREE_MAP, "local")
        # blue hangs off caip; the path went through the domain, so the
        # link is penalized but the route text is still well-formed.
        assert routes["blue"] == "seismo!caip.rutgers.edu!blue!%s"

    def test_masquerading_subdomain(self):
        """A subdomain declared with its full name and own gateway acts
        as a top-level domain: '.rutgers.edu is logically an alias of
        .rutgers, but such a declaration is superfluous'."""
        routes = routes_of(
            "local caip(10)\ncaip .rutgers.edu(0)\n"
            ".rutgers.edu = {blue}", "local")
        assert routes[".rutgers.edu"] == "caip!%s"
        assert routes["blue.rutgers.edu"] == "caip!blue.rutgers.edu!%s"


class TestPrivateRoutes:
    def test_private_not_printed_but_relays(self):
        graph = build_graph([
            ("f1", parse_text("a pvt(10)\npvt b(10)", "f1")),
            ("f2", parse_text("private {pvt}\npvt other(1)", "f2")),
        ])
        table = print_routes(Mapper(graph).run("a"))
        names = {r.name for r in table}
        routes = {r.name: r.route for r in table}
        # The public pvt (file f1) is printed; the private one is not —
        # but only one 'pvt' record may exist.
        assert list(names).count("pvt") <= 1
        assert routes["b"] == "pvt!b!%s"

    def test_fully_private_name_suppressed(self):
        graph = build_graph([
            ("f1", parse_text(
                "private {ghost}\na ghost(10)\nghost b(10)", "f1")),
        ])
        table = print_routes(Mapper(graph).run("a"))
        names = {r.name for r in table}
        assert "ghost" not in names
        assert {r.name: r.route for r in table}["b"] == "ghost!b!%s"
