"""Route-database tests: the paper's domain lookup procedure."""

import pytest

from repro import Pathalias
from repro.errors import RouteError
from repro.mailer.routedb import (
    IndexedPathsFile,
    RouteDatabase,
    domain_suffixes,
)

from tests.conftest import DOMAIN_TREE_MAP


@pytest.fixture
def domain_db() -> RouteDatabase:
    table = Pathalias().run_text(DOMAIN_TREE_MAP, localhost="local")
    return RouteDatabase.from_table(table)


class TestSuffixes:
    def test_paper_sequence(self):
        assert domain_suffixes("caip.rutgers.edu") == \
            ["caip.rutgers.edu", ".rutgers.edu", ".edu"]

    def test_plain_host(self):
        assert domain_suffixes("seismo") == ["seismo"]

    def test_domain_input(self):
        assert domain_suffixes(".rutgers.edu") == \
            [".rutgers.edu", ".edu"]


class TestResolve:
    def test_exact_host_match(self, domain_db):
        res = domain_db.resolve("caip.rutgers.edu", "pleasant")
        assert res.matched == "caip.rutgers.edu"
        assert res.address == "seismo!caip.rutgers.edu!pleasant"

    def test_domain_fallback_produces_same_address(self, domain_db):
        """The paper's worked lookup: with no exact entry, the .edu
        route is used with argument caip.rutgers.edu!pleasant —
        'producing seismo!caip.rutgers.edu!pleasant, as before'."""
        trimmed = RouteDatabase({
            name: route for name, route in [
                (r, domain_db.route(r)) for r in [".edu", "seismo"]
            ]})
        res = trimmed.resolve("caip.rutgers.edu", "pleasant")
        assert res.matched == ".edu"
        assert res.address == "seismo!caip.rutgers.edu!pleasant"

    def test_intermediate_domain_match(self, domain_db):
        db = RouteDatabase({".rutgers.edu": "gw!%s"})
        res = db.resolve("caip.rutgers.edu", "u")
        assert res.matched == ".rutgers.edu"
        assert res.address == "gw!caip.rutgers.edu!u"

    def test_no_route_raises(self, domain_db):
        with pytest.raises(RouteError):
            domain_db.resolve("unknown.host.mil", "u")

    def test_resolve_bang(self, domain_db):
        res = domain_db.resolve_bang("caip.rutgers.edu!pleasant")
        assert res.address == "seismo!caip.rutgers.edu!pleasant"

    def test_resolve_bang_requires_user(self, domain_db):
        with pytest.raises(RouteError):
            domain_db.resolve_bang("caip.rutgers.edu")

    def test_membership(self, domain_db):
        assert ".edu" in domain_db
        assert "caip.rutgers.edu" in domain_db
        assert "nowhere" not in domain_db


class TestIndexedPathsFile:
    def test_build_and_lookup(self, tmp_path, paper_map):
        table = Pathalias().run_text(paper_map, localhost="unc")
        index = IndexedPathsFile.build(table, tmp_path / "paths")
        assert index.lookup("phs") == "duke!phs!%s"
        assert index.lookup("nowhere") is None
        assert len(index) == 7

    def test_file_is_sorted_linear_text(self, tmp_path, paper_map):
        table = Pathalias().run_text(paper_map, localhost="unc")
        IndexedPathsFile.build(table, tmp_path / "paths")
        lines = (tmp_path / "paths").read_text().splitlines()
        names = [line.split("\t")[0] for line in lines]
        assert names == sorted(names)

    def test_bisection_beats_linear_scan(self, tmp_path, paper_map):
        table = Pathalias().run_text(paper_map, localhost="unc")
        index = IndexedPathsFile.build(table, tmp_path / "paths")
        index.comparisons = 0
        index.lookup("ucbvax")
        binary = index.comparisons
        index.comparisons = 0
        index.lookup_linear("ucbvax")
        linear = index.comparisons
        assert binary <= linear

    def test_unsorted_file_rejected(self, tmp_path):
        path = tmp_path / "paths"
        path.write_text("z\tz!%s\na\ta!%s\n")
        with pytest.raises(RouteError):
            IndexedPathsFile(path).load()

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "paths"
        path.write_text("justaname\n")
        with pytest.raises(RouteError):
            IndexedPathsFile(path).load()

    def test_database_roundtrip(self, tmp_path, paper_map):
        table = Pathalias().run_text(paper_map, localhost="unc")
        index = IndexedPathsFile.build(table, tmp_path / "paths")
        db = index.database()
        assert db.resolve("phs", "honey").address == "duke!phs!honey"
