"""MailRouter tests, including the PERSPECTIVES reply hazard."""

import pytest

from repro import Pathalias
from repro.errors import RouteError
from repro.mailer.address import MailerStyle
from repro.mailer.routedb import RouteDatabase
from repro.mailer.router import MailRouter

from tests.conftest import PAPER_1981_MAP


@pytest.fixture
def unc_router() -> MailRouter:
    table = Pathalias().run_text(PAPER_1981_MAP, localhost="unc")
    return MailRouter("unc", RouteDatabase.from_table(table))


class TestOutbound:
    def test_bare_rfc_address(self, unc_router):
        envelope = unc_router.route("honey@phs")
        assert envelope.transport_address == "duke!phs!honey"

    def test_explicit_bang_path_optimized(self, unc_router):
        envelope = unc_router.route("phs!duke!research!user")
        # rightmost known host is research.
        assert envelope.transport_address == "duke!research!user"

    def test_loop_test_preserved(self, unc_router):
        loop = "duke!unc!duke!unc!user"
        envelope = unc_router.route(loop)
        assert envelope.transport_address == loop

    def test_return_path_extended(self, unc_router):
        envelope = unc_router.route("honey@phs", sender="smb")
        assert envelope.from_header == "unc!smb"

    def test_local_user_rejected(self, unc_router):
        with pytest.raises(RouteError):
            unc_router.route("just-a-user")

    def test_manual_resolution(self, unc_router):
        res = unc_router.resolve("mit-ai", "minsky")
        assert res.address == "duke!research!ucbvax!minsky@mit-ai"


class TestReply:
    def test_reply_to_received_path(self, unc_router):
        """A message arrived From: duke!research!user — the reply
        address reuses our own route to the rightmost known host."""
        reply = unc_router.reply_address("duke!research!user")
        assert reply == "duke!research!user"

    def test_reply_reoptimizes_long_paths(self, unc_router):
        reply = unc_router.reply_address("phs!duke!research!user")
        assert reply == "duke!research!user"

    def test_reply_to_unknown_path_kept_verbatim(self, unc_router):
        reply = unc_router.reply_address("x1!x2!user")
        assert reply == "x1!x2!user"

    def test_local_sender_passthrough(self, unc_router):
        assert unc_router.reply_address("honey") == "honey"


class TestPerspectivesHazard:
    """The cbosgd / seismo!mcvax!piet example, made executable."""

    MAP = """\
cbosgd\tprinceton(DEMAND), seismo(DEMAND)
princeton\tcbosgd(DEMAND)
seismo\tcbosgd(DEMAND), mcvax(DAILY)
mcvax\tseismo(DAILY)
"""

    def test_abbreviation_warps_the_name_space(self):
        # cbosgd runs pathalias: it knows a route to seismo, so an
        # eager optimizer abbreviates the Cc: path.
        table = Pathalias().run_text(self.MAP, localhost="cbosgd")
        cbosgd = MailRouter("cbosgd", RouteDatabase.from_table(table))
        abbreviated = cbosgd.abbreviate_cc("seismo!mcvax!piet")
        assert abbreviated == "mcvax!piet"

        # princeton receives the header.  Relative to princeton, the
        # copy recipient should be (cbosgd!)seismo!mcvax!piet; the
        # abbreviated form rebinds to cbosgd!mcvax!piet instead —
        # "this cannot be safely transformed without making
        # assumptions about host name uniqueness."
        received_at_princeton = f"cbosgd!{abbreviated}"
        assert received_at_princeton == "cbosgd!mcvax!piet"
        # cbosgd has no mcvax link: the warped address is undeliverable.
        from repro.graph.build import build_graph
        from repro.mailer.delivery import Network
        from repro.parser.grammar import parse_text

        graph = build_graph([("m", parse_text(self.MAP))])
        net = Network(graph, default_style=MailerStyle.BANG_RIGID)
        outcome = net.deliver("princeton", received_at_princeton)
        assert not outcome.delivered

        # The unabbreviated form survives the same trip.
        safe = f"cbosgd!seismo!mcvax!piet"
        outcome = net.deliver("princeton", safe)
        assert outcome.delivered
        assert outcome.final_host == "mcvax"

    def test_abbreviate_stops_at_unknown(self):
        table = Pathalias().run_text(self.MAP, localhost="cbosgd")
        router = MailRouter("cbosgd", RouteDatabase.from_table(table))
        assert router.abbreviate_cc("unknown1!unknown2!user") == \
            "unknown1!unknown2!user"

    def test_gateway_router_translates(self):
        table = Pathalias().run_text(self.MAP, localhost="seismo")
        gateway = MailRouter("seismo", RouteDatabase.from_table(table),
                             style=MailerStyle.RFC822_RIGID,
                             is_gateway=True)
        assert gateway.rewriter.translate("a!b!user") == "user%b@a"
