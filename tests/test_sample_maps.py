"""Integration tests over the period-flavored sample maps in
tests/data/ — the closest thing to running the tool on a real 1986
posting, exercising every input feature at once."""

from pathlib import Path

import pytest

from repro import HeuristicConfig, Pathalias
from repro.config import DEAD
from repro.core.explain import explain_route, verify_explanation
from repro.graph.check import check_map
from repro.mailer.routedb import RouteDatabase

DATA = Path(__file__).parent / "data"
FILES = [DATA / "d.backbone", DATA / "d.universities", DATA / "d.arpa"]


@pytest.fixture(scope="module")
def run():
    tool = Pathalias()
    named = [(p.name, p.read_text()) for p in FILES]
    return tool.run_detailed(named, "ihnp4")


class TestWholeMap:
    def test_everything_reachable(self, run):
        assert run.table.unreachable == []

    def test_scale(self, run):
        assert len(run.table) > 30

    def test_backbone_direct(self, run):
        assert run.table.route("allegra") == "allegra!%s"
        assert run.table.route("seismo") == "seismo!%s"

    def test_multi_hop_university(self, run):
        assert run.table.route("rutgers-ru") == \
            "allegra!princeton!rutgers-ru!%s"

    def test_clique_member_via_net(self, run):
        # bellcore is NJ-net clique-mates with princeton (its own
        # declared link points outward only), so the route rides the
        # clique: the net node itself stays invisible.
        record = run.table.lookup("bellcore")
        assert record is not None
        assert record.route == "allegra!princeton!bellcore!%s"
        assert "NJ-net" not in record.route

    def test_arpa_mixed_syntax(self, run):
        route = run.table.route("mit-ai")
        assert route.endswith("%s@mit-ai")
        assert route.startswith(("seismo!", "ucbvax!"))

    def test_alias_equivalence(self, run):
        fun = run.table.lookup("fun")
        princeton = run.table.lookup("princeton")
        assert fun.cost == princeton.cost

    def test_nosc_alias_both_names(self, run):
        nosc = run.table.lookup("nosc")
        noscvax = run.table.lookup("noscvax")
        assert nosc is not None and noscvax is not None
        assert nosc.cost == noscvax.cost

    def test_passive_leaf_by_implication(self, run):
        sleepy = run.table.lookup("sleepy")
        assert sleepy is not None
        assert "princeton" in sleepy.route

    def test_private_bilbo_hidden_but_useful(self, run):
        names = {r.name for r in run.table}
        assert "bilbo" not in names  # only the private one exists

    def test_dead_link_avoided(self, run):
        """decvax!mcvax is dead: mcvax routes via seismo instead."""
        mcvax = run.table.lookup("mcvax")
        assert "seismo" in mcvax.route
        assert mcvax.cost < DEAD

    def test_domain_routes(self, run):
        db = RouteDatabase.from_table(run.table)
        resolution = db.resolve("caip.rutgers.edu", "pleasant")
        assert resolution.address.endswith(
            "caip.rutgers.edu!pleasant")
        assert "seismo" in resolution.address

    def test_top_level_domain_printed(self, run):
        assert run.table.lookup(".edu") is not None

    def test_every_route_explains(self, run):
        for record in run.table:
            explanation = explain_route(run.mapping, record.node)
            assert verify_explanation(explanation), record.name

    def test_map_checks_find_the_planted_problems(self, run):
        report = check_map(run.graph)
        asymmetric = {f.subject for f in report.of_kind(
            "asymmetric-link")}
        assert "sleepy" in asymmetric  # the passive site

    def test_csnet_gatewayed(self, run):
        """CSNET members enter via csnet-relay, not directly."""
        record = run.table.lookup("udel-relay")
        assert record is not None
        assert "csnet-relay" in record.route


class TestOtherSources:
    def test_from_mcvax(self):
        named = [(p.name, p.read_text()) for p in FILES]
        table = Pathalias().run_texts(named, localhost="mcvax")
        assert table.unreachable == []
        # Transatlantic routing works from the far side too.
        assert table.route("mcvax") == "%s"
        assert "seismo" in table.route("ucbvax") or \
            "decvax" in table.route("ucbvax")

    def test_second_best_no_worse(self):
        named = [(p.name, p.read_text()) for p in FILES]
        tree = Pathalias().run_texts(named, localhost="ihnp4")
        dag = Pathalias(
            heuristics=HeuristicConfig(second_best=True)
        ).run_texts(named, localhost="ihnp4")
        tree_costs = {r.node.name: r.cost for r in tree}
        for record in dag:
            if record.node.name in tree_costs:
                assert record.cost <= tree_costs[record.node.name]
