"""Unit tests for the hand-rolled scanner."""

import pytest

from repro.errors import ScanError
from repro.parser.scanner import Scanner, scan_text
from repro.parser.tokens import TokenKind


def kinds(text: str) -> list[TokenKind]:
    return [t.kind for t in scan_text(text)]


def texts(text: str) -> list[str]:
    return [t.text for t in scan_text(text)
            if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]


class TestBasicTokens:
    def test_simple_host_line(self):
        tokens = scan_text("a b(10), c(20)\n")
        assert [t.kind for t in tokens] == [
            TokenKind.NAME, TokenKind.NAME, TokenKind.LPAREN,
            TokenKind.NUMBER, TokenKind.RPAREN, TokenKind.COMMA,
            TokenKind.NAME, TokenKind.LPAREN, TokenKind.NUMBER,
            TokenKind.RPAREN, TokenKind.NEWLINE, TokenKind.EOF,
        ]

    def test_number_value(self):
        tokens = scan_text("a b(12345)")
        number = [t for t in tokens if t.kind is TokenKind.NUMBER][0]
        assert number.value == 12345

    def test_routing_operators(self):
        assert TokenKind.OP in kinds("a @b(10)")
        assert texts("a @b, c!, d:e, f%g") .count("@") == 1

    def test_net_declaration_tokens(self):
        tokens = texts("ARPA = @{mit-ai, ucbvax}(95)")
        assert tokens == ["ARPA", "=", "@", "{", "mit-ai", ",",
                          "ucbvax", "}", "(", "95", ")"]

    def test_string_token(self):
        tokens = scan_text('file "d.region1"')
        strings = [t for t in tokens if t.kind is TokenKind.STRING]
        assert strings[0].text == "d.region1"

    def test_empty_input(self):
        tokens = scan_text("")
        assert [t.kind for t in tokens] == [TokenKind.EOF]

    def test_line_numbers(self):
        tokens = scan_text("a b\nc d\n")
        names = [t for t in tokens if t.kind is TokenKind.NAME]
        assert [t.line for t in names] == [1, 1, 2, 2]


class TestNames:
    def test_name_chars(self):
        assert texts("UNC-dwarf x_1 a.b.c plus+name") == \
            ["UNC-dwarf", "x_1", "a.b.c", "plus+name"]

    def test_domain_name(self):
        assert texts(".rutgers.edu caip") == [".rutgers.edu", "caip"]

    def test_digit_leading_name(self):
        # Outside cost context a digit run extending into letters is a
        # host name (3com!), not a number.
        tokens = scan_text("a 3com(10)")
        assert tokens[1].kind is TokenKind.NAME
        assert tokens[1].text == "3com"

    def test_bare_number_outside_parens(self):
        tokens = scan_text("a 42")
        assert tokens[1].kind is TokenKind.NUMBER


class TestCostContext:
    def test_minus_inside_parens(self):
        tokens = scan_text("a b(HOURLY-5)")
        assert TokenKind.MINUS in [t.kind for t in tokens]

    def test_minus_outside_parens_is_name_char(self):
        tokens = scan_text("a UNC-dwarf")
        assert tokens[1].text == "UNC-dwarf"

    def test_plus_and_arithmetic(self):
        tokens = texts("a b(1+2*3/4)")
        assert tokens == ["a", "b", "(", "1", "+", "2", "*", "3",
                          "/", "4", ")"]

    def test_nested_parens(self):
        tokens = texts("a b((1+2)*3)")
        assert tokens.count("(") == 2
        assert tokens.count(")") == 2


class TestLinesAndComments:
    def test_comment_stripped(self):
        assert texts("a b(10) # the works\n# whole line\nc d") == \
            ["a", "b", "(", "10", ")", "c", "d"]

    def test_blank_lines_ignored(self):
        tokens = scan_text("\n\na b\n\n")
        newlines = [t for t in tokens if t.kind is TokenKind.NEWLINE]
        assert len(newlines) == 1

    def test_continuation_by_indent(self):
        """Classic UUCP map style: an indented line continues the
        statement."""
        tokens = scan_text("a b(10),\n\tc(20)\nd e\n")
        newlines = [t for t in tokens if t.kind is TokenKind.NEWLINE]
        assert len(newlines) == 2  # two statements, not three

    def test_continuation_by_backslash(self):
        tokens = scan_text("a b(10), \\\nc(20)\n")
        newlines = [t for t in tokens if t.kind is TokenKind.NEWLINE]
        assert len(newlines) == 1

    def test_statement_boundary_at_column_zero(self):
        tokens = scan_text("a b\nc d")
        newlines = [t for t in tokens if t.kind is TokenKind.NEWLINE]
        assert len(newlines) == 2

    def test_final_statement_without_newline_closed(self):
        tokens = scan_text("a b")
        assert tokens[-2].kind is TokenKind.NEWLINE
        assert tokens[-1].kind is TokenKind.EOF


class TestErrors:
    def test_unbalanced_rparen(self):
        with pytest.raises(ScanError):
            scan_text("a b)")

    def test_unterminated_string(self):
        with pytest.raises(ScanError):
            scan_text('file "oops')

    def test_bad_character(self):
        with pytest.raises(ScanError):
            scan_text("a b(10) ;")

    def test_error_carries_location(self):
        with pytest.raises(ScanError) as info:
            Scanner("ok ok\nbad ;", "d.map").tokens()
        assert info.value.line == 2
        assert info.value.filename == "d.map"
