"""The PROBLEMS section: tree commitment vs. the second-best algorithm.

The motown figure: topaz is cheapest via caip and the .rutgers.edu
domain (225), so the tree routes motown through the domain at 425 plus
the essentially-infinite relay penalty.  The right answer for motown
uses the second-best (domain-free) path to topaz: 300 + 200 = 500.
"""

from repro.config import HeuristicConfig, INF
from repro.core.mapper import Mapper
from repro.core.printer import print_routes
from repro.graph.build import build_graph
from repro.parser.grammar import parse_text

from tests.conftest import MOTOWN_MAP


def run(text: str, source: str, **cfg):
    graph = build_graph([("d.map", parse_text(text))])
    return Mapper(graph, HeuristicConfig(**cfg)).run(source)


class TestTreeMode:
    def test_topaz_via_domain(self):
        result = run(MOTOWN_MAP, "princeton")
        assert result.cost("topaz") == 225  # 200 + 25 + 0

    def test_motown_committed_to_penalized_branch(self):
        """425 + 'infinity', exactly as the figure annotates."""
        result = run(MOTOWN_MAP, "princeton")
        cost = result.cost("motown")
        assert cost >= 425 + INF
        label = result.best(result.graph.require("motown"))
        assert label.parent.node.name == "topaz"
        assert label.parent.domain_seen  # the committed, penalized path


class TestSecondBestMode:
    def test_topaz_keeps_both_labels(self):
        result = run(MOTOWN_MAP, "princeton", second_best=True)
        topaz = result.graph.require("topaz")
        labels = result.labels_for(topaz)
        costs = sorted(l.cost for l in labels)
        assert costs == [225, 300]  # domain path and direct path

    def test_motown_takes_the_right_branch(self):
        result = run(MOTOWN_MAP, "princeton", second_best=True)
        assert result.cost("motown") == 500
        label = result.best(result.graph.require("motown"))
        assert label.parent.node.name == "topaz"
        assert not label.parent.domain_seen  # the domain-free parent

    def test_topaz_own_route_still_cheapest(self):
        """second-best mode must not change hosts the tree got right."""
        result = run(MOTOWN_MAP, "princeton", second_best=True)
        assert result.cost("topaz") == 225
        assert result.cost("caip") == 200

    def test_printed_routes(self):
        result = run(MOTOWN_MAP, "princeton", second_best=True)
        table = print_routes(result)
        routes = {r.name: r.route for r in table}
        # motown's route continues from topaz's *domain-free* label,
        # which knows the host by its bare name.
        assert routes["motown"] == "topaz!motown!%s"
        # topaz's own cheapest label arrives through the domain, so it
        # prints under its qualified name.
        assert routes["topaz.rutgers.edu"] == "caip!topaz.rutgers.edu!%s"

    def test_tree_mode_prints_domain_route_for_motown(self):
        """Tree commitment: motown's only route rides the domain path
        the figure marks as costing 425 + infinity."""
        result = run(MOTOWN_MAP, "princeton")
        table = print_routes(result)
        routes = {r.name: r.route for r in table}
        assert routes["motown"] == "caip!topaz.rutgers.edu!motown!%s"

    def test_second_best_matches_tree_without_domains(self):
        """On a domain-free graph the two modes are identical."""
        plain = "a b(10), c(30)\nb c(10)\nc d(10)"
        tree = run(plain, "a")
        dag = run(plain, "a", second_best=True)
        for name in ("b", "c", "d"):
            assert tree.cost(name) == dag.cost(name)
