"""Snapshot store: round-trips, binary search, and damage handling."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import HeuristicConfig
from repro.core.batch import BatchMapper
from repro.core.pathalias import Pathalias
from repro.errors import RouteError
from repro.mailer.routedb import RouteDatabase
from repro.service.store import (
    SnapshotError,
    SnapshotReader,
    SnapshotTable,
    build_snapshot,
    decode_graph_section,
    upgrade_snapshot,
)

from tests.conftest import DOMAIN_TREE_MAP, PAPER_1981_MAP

DATA = Path(__file__).parent / "data"
DATA_MAPS = sorted(DATA.glob("d.*"))


def build(named):
    return Pathalias().build(named)


def named_file(path: Path):
    return [(path.name, path.read_text())]


@pytest.fixture(scope="module", params=[p.name for p in DATA_MAPS])
def snapped(request, tmp_path_factory):
    """(graph, reader) for one tests/data map, snapshot on disk."""
    path = DATA / request.param
    graph = build(named_file(path))
    out = tmp_path_factory.mktemp("snap") / f"{path.name}.snap"
    build_snapshot(graph, out)
    return graph, SnapshotReader.open(out)


class TestRoundTrip:
    def test_every_destination_matches_print_routes(self, snapped):
        """For every source, every looked-up route is byte-identical
        to what print_routes produces — and nothing extra exists."""
        graph, reader = snapped
        sources = reader.sources()
        assert sources == sorted(BatchMapper(graph).sources())
        batch = BatchMapper(graph, engine="reference").run(sources)
        for source in sources:
            table = reader.table(source)
            reference = batch[source]
            assert len(table) == len(reference.records)
            for record in reference:
                assert table.lookup(record.name) == (record.cost,
                                                     record.route)
                assert table.route(record.name) == record.route
                assert record.name in table
            assert table.unreachable() == reference.unreachable

    def test_misses_return_none(self, snapped):
        _, reader = snapped
        table = reader.table(reader.sources()[0])
        assert table.lookup("no-such-host-anywhere") is None
        assert table.route("") is None
        assert "no-such-host-anywhere" not in table

    def test_records_iterate_in_name_order(self, snapped):
        _, reader = snapped
        table = reader.table(reader.sources()[0])
        names = [name for _, name, _ in table.records()]
        assert names == sorted(names)

    def test_graph_section_round_trips(self, snapped):
        graph, reader = snapped
        from repro.graph.compact import CompactGraph

        original = CompactGraph.compile(graph)
        decoded = reader.decode_graph()
        assert decoded.names == original.names
        assert decoded.off == original.off
        assert decoded.to == original.to
        assert decoded.cost == original.cost
        assert decoded.flags == original.flags
        assert decoded.kind == original.kind
        assert decoded.op == original.op
        assert decoded.cid_by_name == original.cid_by_name
        assert decoded.warnings == original.warnings


class TestDeterminism:
    def test_rebuild_is_byte_identical(self, tmp_path):
        graph = build(named_file(DATA_MAPS[0]))
        a, b = tmp_path / "a.snap", tmp_path / "b.snap"
        build_snapshot(graph, a)
        build_snapshot(build(named_file(DATA_MAPS[0])), b)
        assert a.read_bytes() == b.read_bytes()

    def test_worker_count_does_not_change_bytes(self, tmp_path):
        graph = build(named_file(DATA_MAPS[0]))
        serial, pooled = tmp_path / "s.snap", tmp_path / "p.snap"
        build_snapshot(graph, serial, jobs=1)
        build_snapshot(graph, pooled, jobs=2)
        assert serial.read_bytes() == pooled.read_bytes()


class TestSuffixSearch:
    def test_matches_route_database(self, tmp_path):
        graph = build([("d.domains", DOMAIN_TREE_MAP)])
        out = tmp_path / "d.snap"
        build_snapshot(graph, out)
        reader = SnapshotReader.open(out)
        table = reader.table("local")
        reference = RouteDatabase(
            {name: route for _, name, route in table.records()})
        for target in ("caip.rutgers.edu", "x.rutgers.edu", "blue",
                       "seismo"):
            got = table.resolve(target, "pleasant")
            want = reference.resolve(target, "pleasant")
            assert got == want

    def test_miss_raises_route_error(self, tmp_path):
        graph = build([("d.map", PAPER_1981_MAP)])
        out = tmp_path / "p.snap"
        build_snapshot(graph, out)
        table = SnapshotReader.open(out).table("unc")
        with pytest.raises(RouteError):
            table.resolve("nowhere.example", "user")

    def test_reader_resolve_shortcut(self, tmp_path):
        graph = build([("d.map", PAPER_1981_MAP)])
        out = tmp_path / "p.snap"
        build_snapshot(graph, out)
        reader = SnapshotReader.open(out)
        res = reader.resolve("unc", "phs", "honey")
        assert res.address == "duke!phs!honey"


class TestHeuristicsMeta:
    def test_config_round_trips(self, tmp_path):
        cfg = HeuristicConfig(mixed_penalty=123, gateway_penalty=456,
                              back_link_factor=3,
                              infer_back_links=False)
        graph = build([("d.map", PAPER_1981_MAP)])
        out = tmp_path / "h.snap"
        build_snapshot(graph, out, heuristics=cfg)
        assert SnapshotReader.open(out).heuristics() == cfg

    def test_second_best_flag(self, tmp_path):
        graph = build([("d.map", PAPER_1981_MAP)])
        out = tmp_path / "sb.snap"
        build_snapshot(graph, out,
                       heuristics=HeuristicConfig(second_best=True))
        reader = SnapshotReader.open(out)
        assert reader.second_best
        assert reader.heuristics().second_best


class TestFormatV2:
    """The v2 layout: per-state cost records and the v1 compat shim."""

    def test_default_build_is_v2(self, snapped):
        _, reader = snapped
        assert reader.version == 2
        assert reader.has_state_costs
        for source in reader.sources():
            assert reader.table(source).has_state_costs

    def test_state_records_match_a_fresh_mapping(self, snapped):
        """The stored STAT block is exactly what the mapper computed:
        same states, same costs, same flags/kinds/parents."""
        from repro.core.fastmap import CompactMapper, state_costs
        from repro.graph.compact import CompactGraph

        graph, reader = snapped
        cg = CompactGraph.compile(graph)
        mapper = CompactMapper(cg)
        for source in reader.sources():
            stored = list(reader.table(source).state_records())
            fresh = state_costs(mapper.run(source))
            assert stored == fresh

    def test_state_costs_cover_every_node_kind(self, tmp_path):
        """Nets, domains, and private nodes — absent from the route
        records — all have exact stored costs, which is what the
        incremental triangle test stands on."""
        from repro.graph.compact import (
            SK_DOMAIN,
            SK_HOST,
            SK_NET,
            SK_PRIVATE,
        )

        text = (DATA / "d.universities").read_text()
        graph = build([("d.universities", text)])
        out = tmp_path / "u.snap"
        build_snapshot(graph, out)
        reader = SnapshotReader.open(out)
        cg = reader.decode_graph()
        table = reader.table("princeton")
        kinds = {kind for _, _, kind, _, _ in table.state_records()}
        assert kinds == {SK_HOST, SK_NET, SK_PRIVATE}
        # the NJ-net placeholder has a cost even though no route
        # record ever mentions it
        net_cid = cg.find("NJ-net")
        assert cg.is_net[net_cid]
        assert table.state_cost_of(net_cid) is not None
        assert table.route("NJ-net") is None
        # and the arpa shard adds domains to the mix
        text = (DATA / "d.arpa").read_text()
        build_snapshot(build([("d.arpa", text)]), out)
        reader = SnapshotReader.open(out)
        table = reader.table("seismo")
        kinds = {kind for _, _, kind, _, _ in table.state_records()}
        assert SK_DOMAIN in kinds and SK_NET in kinds
        edu = reader.decode_graph().find(".edu")
        assert table.state_cost_of(edu) == 95  # seismo .edu(DEDICATED)

    def test_root_state_costs_zero_with_no_parent(self, snapped):
        graph, reader = snapped
        from repro.graph.compact import CompactGraph

        cg = CompactGraph.compile(graph)
        for source in reader.sources():
            table = reader.table(source)
            root = cg.find(source)
            assert table.state_cost_of(root) == 0
            parents = {cid: parent for cid, _, _, _, parent
                       in table.state_records()}
            assert parents[root] == -1

    def test_v1_reads_through_compat_shim(self, tmp_path):
        graph = build(named_file(DATA_MAPS[0]))
        v1, v2 = tmp_path / "v1.snap", tmp_path / "v2.snap"
        build_snapshot(graph, v1, fmt=1)
        build_snapshot(graph, v2)
        old = SnapshotReader.open(v1)
        new = SnapshotReader.open(v2)
        assert old.version == 1 and new.version == 2
        assert not old.has_state_costs
        assert old.sources() == new.sources()
        for source in old.sources():
            a, b = old.table(source), new.table(source)
            assert list(a.records()) == list(b.records())
            assert a.unreachable() == b.unreachable()
            assert a.tree_links() == b.tree_links()
            assert a.state_count == 0
            assert a.state_cost_of(0) is None
        # v1 is strictly smaller: no STAT block
        assert old.size < new.size

    def test_v1_rejects_unknown_format_request(self, tmp_path):
        graph = build(named_file(DATA_MAPS[0]))
        with pytest.raises(SnapshotError, match="unknown snapshot"):
            build_snapshot(graph, tmp_path / "x.snap", fmt=3)

    def test_upgrade_is_byte_identical_to_native_v2(self, tmp_path):
        """The --upgrade satellite: a v1 snapshot rewritten from its
        own stored graph equals a native v2 build from the map."""
        graph = build(named_file(DATA_MAPS[0]))
        v1 = tmp_path / "v1.snap"
        v2 = tmp_path / "v2.snap"
        up = tmp_path / "up.snap"
        build_snapshot(graph, v1, fmt=1)
        build_snapshot(graph, v2)
        info = upgrade_snapshot(v1, up)
        assert info.format == 2
        assert up.read_bytes() == v2.read_bytes()

    def test_upgrade_preserves_flags_and_heuristics(self, tmp_path):
        cfg = HeuristicConfig(back_link_factor=2, second_best=True)
        graph = build(named_file(DATA_MAPS[0]))
        v1 = tmp_path / "v1.snap"
        up = tmp_path / "up.snap"
        build_snapshot(graph, v1, heuristics=cfg, case_fold=True,
                       fmt=1)
        upgrade_snapshot(v1, up)
        reader = SnapshotReader.open(up)
        assert reader.heuristics() == cfg
        assert reader.second_best and reader.case_fold
        ref = tmp_path / "ref.snap"
        build_snapshot(graph, ref, heuristics=cfg, case_fold=True)
        assert up.read_bytes() == ref.read_bytes()

    def test_upgrade_is_idempotent_on_v2(self, tmp_path):
        graph = build(named_file(DATA_MAPS[0]))
        v2 = tmp_path / "v2.snap"
        again = tmp_path / "again.snap"
        build_snapshot(graph, v2)
        upgrade_snapshot(v2, again)
        assert again.read_bytes() == v2.read_bytes()


class TestDamage:
    @pytest.fixture()
    def snap_bytes(self, tmp_path):
        graph = build(named_file(DATA_MAPS[0]))
        out = tmp_path / "ok.snap"
        build_snapshot(graph, out)
        return out.read_bytes()

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot open"):
            SnapshotReader.open(tmp_path / "nope.snap")

    def test_bad_magic(self, tmp_path, snap_bytes):
        bad = tmp_path / "bad.snap"
        bad.write_bytes(b"NOTASNAP" + snap_bytes[8:])
        with pytest.raises(SnapshotError, match="bad magic"):
            SnapshotReader.open(bad)

    def test_unsupported_version(self, tmp_path, snap_bytes):
        bad = tmp_path / "bad.snap"
        bad.write_bytes(snap_bytes[:8] + b"\x63\x00\x00\x00"
                        + snap_bytes[12:])
        with pytest.raises(SnapshotError, match="version 99"):
            SnapshotReader.open(bad)

    @pytest.mark.parametrize("keep", [0, 4, 40, 87, 200])
    def test_truncation_detected_at_any_length(self, tmp_path,
                                               snap_bytes, keep):
        bad = tmp_path / "cut.snap"
        bad.write_bytes(snap_bytes[:keep])
        with pytest.raises(SnapshotError):
            SnapshotReader.open(bad)

    def test_truncation_one_byte_short(self, tmp_path, snap_bytes):
        bad = tmp_path / "cut.snap"
        bad.write_bytes(snap_bytes[:-1])
        with pytest.raises(SnapshotError):
            SnapshotReader.open(bad)

    def test_payload_corruption_fails_crc(self, tmp_path, snap_bytes):
        flipped = bytearray(snap_bytes)
        flipped[len(flipped) // 2] ^= 0xFF
        bad = tmp_path / "flip.snap"
        bad.write_bytes(bytes(flipped))
        with pytest.raises(SnapshotError, match="CRC"):
            SnapshotReader.open(bad)

    def test_garbage_file(self, tmp_path):
        bad = tmp_path / "garbage.snap"
        bad.write_bytes(b"\x00" * 300)
        with pytest.raises(SnapshotError):
            SnapshotReader.open(bad)

    def test_malformed_graph_section(self):
        with pytest.raises(SnapshotError):
            decode_graph_section(b"\x01\x00")

    def test_v2_section_with_missing_block_rejected(self):
        """A v2 tag directory lacking a required block is a clear
        SnapshotError, not an index error at lookup time."""
        import struct

        from repro.service.store import _TAG

        directory = struct.pack("<I", 1) + _TAG.pack(b"RECS", 0)
        with pytest.raises(SnapshotError, match="BLOB|UNRC"):
            SnapshotTable("x", directory, version=2)

    def test_v2_section_with_truncated_blocks_rejected(self):
        import struct

        from repro.service.store import _TAG

        directory = struct.pack("<I", 2) \
            + _TAG.pack(b"RECS", 24) + _TAG.pack(b"BLOB", 1000)
        with pytest.raises(SnapshotError, match="truncated"):
            SnapshotTable("x", directory + b"\x00" * 24, version=2)

    def test_v2_section_with_ragged_block_rejected(self):
        import struct

        from repro.service.store import _TAG

        directory = struct.pack("<I", 5) + b"".join(
            _TAG.pack(tag, 7 if tag == b"STAT" else 0)
            for tag in (b"RECS", b"UNRC", b"TREE", b"STAT", b"BLOB"))
        with pytest.raises(SnapshotError, match="whole number"):
            SnapshotTable("x", directory + b"\x00" * 7, version=2)

    def test_v2_truncated_tag_directory_rejected(self):
        with pytest.raises(SnapshotError, match="malformed"):
            SnapshotTable("x", b"\x05\x00\x00\x00RE", version=2)
