"""Snapshot store: round-trips, binary search, and damage handling."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import HeuristicConfig
from repro.core.batch import BatchMapper
from repro.core.pathalias import Pathalias
from repro.errors import RouteError
from repro.mailer.routedb import RouteDatabase
from repro.service.store import (
    SnapshotError,
    SnapshotReader,
    build_snapshot,
    decode_graph_section,
)

from tests.conftest import DOMAIN_TREE_MAP, PAPER_1981_MAP

DATA = Path(__file__).parent / "data"
DATA_MAPS = sorted(DATA.glob("d.*"))


def build(named):
    return Pathalias().build(named)


def named_file(path: Path):
    return [(path.name, path.read_text())]


@pytest.fixture(scope="module", params=[p.name for p in DATA_MAPS])
def snapped(request, tmp_path_factory):
    """(graph, reader) for one tests/data map, snapshot on disk."""
    path = DATA / request.param
    graph = build(named_file(path))
    out = tmp_path_factory.mktemp("snap") / f"{path.name}.snap"
    build_snapshot(graph, out)
    return graph, SnapshotReader.open(out)


class TestRoundTrip:
    def test_every_destination_matches_print_routes(self, snapped):
        """For every source, every looked-up route is byte-identical
        to what print_routes produces — and nothing extra exists."""
        graph, reader = snapped
        sources = reader.sources()
        assert sources == sorted(BatchMapper(graph).sources())
        batch = BatchMapper(graph, engine="reference").run(sources)
        for source in sources:
            table = reader.table(source)
            reference = batch[source]
            assert len(table) == len(reference.records)
            for record in reference:
                assert table.lookup(record.name) == (record.cost,
                                                     record.route)
                assert table.route(record.name) == record.route
                assert record.name in table
            assert table.unreachable() == reference.unreachable

    def test_misses_return_none(self, snapped):
        _, reader = snapped
        table = reader.table(reader.sources()[0])
        assert table.lookup("no-such-host-anywhere") is None
        assert table.route("") is None
        assert "no-such-host-anywhere" not in table

    def test_records_iterate_in_name_order(self, snapped):
        _, reader = snapped
        table = reader.table(reader.sources()[0])
        names = [name for _, name, _ in table.records()]
        assert names == sorted(names)

    def test_graph_section_round_trips(self, snapped):
        graph, reader = snapped
        from repro.graph.compact import CompactGraph

        original = CompactGraph.compile(graph)
        decoded = reader.decode_graph()
        assert decoded.names == original.names
        assert decoded.off == original.off
        assert decoded.to == original.to
        assert decoded.cost == original.cost
        assert decoded.flags == original.flags
        assert decoded.kind == original.kind
        assert decoded.op == original.op
        assert decoded.cid_by_name == original.cid_by_name
        assert decoded.warnings == original.warnings


class TestDeterminism:
    def test_rebuild_is_byte_identical(self, tmp_path):
        graph = build(named_file(DATA_MAPS[0]))
        a, b = tmp_path / "a.snap", tmp_path / "b.snap"
        build_snapshot(graph, a)
        build_snapshot(build(named_file(DATA_MAPS[0])), b)
        assert a.read_bytes() == b.read_bytes()

    def test_worker_count_does_not_change_bytes(self, tmp_path):
        graph = build(named_file(DATA_MAPS[0]))
        serial, pooled = tmp_path / "s.snap", tmp_path / "p.snap"
        build_snapshot(graph, serial, jobs=1)
        build_snapshot(graph, pooled, jobs=2)
        assert serial.read_bytes() == pooled.read_bytes()


class TestSuffixSearch:
    def test_matches_route_database(self, tmp_path):
        graph = build([("d.domains", DOMAIN_TREE_MAP)])
        out = tmp_path / "d.snap"
        build_snapshot(graph, out)
        reader = SnapshotReader.open(out)
        table = reader.table("local")
        reference = RouteDatabase(
            {name: route for _, name, route in table.records()})
        for target in ("caip.rutgers.edu", "x.rutgers.edu", "blue",
                       "seismo"):
            got = table.resolve(target, "pleasant")
            want = reference.resolve(target, "pleasant")
            assert got == want

    def test_miss_raises_route_error(self, tmp_path):
        graph = build([("d.map", PAPER_1981_MAP)])
        out = tmp_path / "p.snap"
        build_snapshot(graph, out)
        table = SnapshotReader.open(out).table("unc")
        with pytest.raises(RouteError):
            table.resolve("nowhere.example", "user")

    def test_reader_resolve_shortcut(self, tmp_path):
        graph = build([("d.map", PAPER_1981_MAP)])
        out = tmp_path / "p.snap"
        build_snapshot(graph, out)
        reader = SnapshotReader.open(out)
        res = reader.resolve("unc", "phs", "honey")
        assert res.address == "duke!phs!honey"


class TestHeuristicsMeta:
    def test_config_round_trips(self, tmp_path):
        cfg = HeuristicConfig(mixed_penalty=123, gateway_penalty=456,
                              back_link_factor=3,
                              infer_back_links=False)
        graph = build([("d.map", PAPER_1981_MAP)])
        out = tmp_path / "h.snap"
        build_snapshot(graph, out, heuristics=cfg)
        assert SnapshotReader.open(out).heuristics() == cfg

    def test_second_best_flag(self, tmp_path):
        graph = build([("d.map", PAPER_1981_MAP)])
        out = tmp_path / "sb.snap"
        build_snapshot(graph, out,
                       heuristics=HeuristicConfig(second_best=True))
        reader = SnapshotReader.open(out)
        assert reader.second_best
        assert reader.heuristics().second_best


class TestDamage:
    @pytest.fixture()
    def snap_bytes(self, tmp_path):
        graph = build(named_file(DATA_MAPS[0]))
        out = tmp_path / "ok.snap"
        build_snapshot(graph, out)
        return out.read_bytes()

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot open"):
            SnapshotReader.open(tmp_path / "nope.snap")

    def test_bad_magic(self, tmp_path, snap_bytes):
        bad = tmp_path / "bad.snap"
        bad.write_bytes(b"NOTASNAP" + snap_bytes[8:])
        with pytest.raises(SnapshotError, match="bad magic"):
            SnapshotReader.open(bad)

    def test_unsupported_version(self, tmp_path, snap_bytes):
        bad = tmp_path / "bad.snap"
        bad.write_bytes(snap_bytes[:8] + b"\x63\x00\x00\x00"
                        + snap_bytes[12:])
        with pytest.raises(SnapshotError, match="version 99"):
            SnapshotReader.open(bad)

    @pytest.mark.parametrize("keep", [0, 4, 40, 87, 200])
    def test_truncation_detected_at_any_length(self, tmp_path,
                                               snap_bytes, keep):
        bad = tmp_path / "cut.snap"
        bad.write_bytes(snap_bytes[:keep])
        with pytest.raises(SnapshotError):
            SnapshotReader.open(bad)

    def test_truncation_one_byte_short(self, tmp_path, snap_bytes):
        bad = tmp_path / "cut.snap"
        bad.write_bytes(snap_bytes[:-1])
        with pytest.raises(SnapshotError):
            SnapshotReader.open(bad)

    def test_payload_corruption_fails_crc(self, tmp_path, snap_bytes):
        flipped = bytearray(snap_bytes)
        flipped[len(flipped) // 2] ^= 0xFF
        bad = tmp_path / "flip.snap"
        bad.write_bytes(bytes(flipped))
        with pytest.raises(SnapshotError, match="CRC"):
            SnapshotReader.open(bad)

    def test_garbage_file(self, tmp_path):
        bad = tmp_path / "garbage.snap"
        bad.write_bytes(b"\x00" * 300)
        with pytest.raises(SnapshotError):
            SnapshotReader.open(bad)

    def test_malformed_graph_section(self):
        with pytest.raises(SnapshotError):
            decode_graph_section(b"\x01\x00")
