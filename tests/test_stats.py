"""Graph-statistics tests."""

from repro.graph.build import build_graph
from repro.graph.stats import compute_stats
from repro.parser.grammar import parse_text


def stats_of(text: str):
    return compute_stats(build_graph([("d.map", parse_text(text))]))


class TestCounts:
    def test_basic(self):
        stats = stats_of("a b(10), c(10)\nb c(10)")
        assert stats.nodes == 3
        assert stats.hosts == 3
        assert stats.links == 3
        assert stats.normal_links == 3

    def test_net_and_domain_counts(self):
        stats = stats_of("NET = {a, b}(10)\n.edu = {c}")
        assert stats.nets == 2
        assert stats.domains == 1
        assert stats.net_links == 6  # 2 per member, both nets

    def test_alias_links(self):
        stats = stats_of("a = b")
        assert stats.alias_links == 2

    def test_private_count(self):
        stats = stats_of("private {p}\np a(10)")
        assert stats.private_hosts == 1

    def test_degrees(self):
        stats = stats_of("a b(1), c(1), d(1)")
        assert stats.max_out_degree == 3
        assert abs(stats.mean_out_degree - 3 / 4) < 1e-9


class TestSparsity:
    def test_sparse_graph(self):
        stats = stats_of("a b(1)\nb c(1)\nc d(1)")
        assert stats.is_sparse()
        assert stats.sparsity < 2

    def test_clique_representation_keeps_it_sparse(self):
        """The paper's point: the star representation of a 40-member
        clique contributes 80 edges, not 1560."""
        members = ", ".join(f"m{i}" for i in range(40))
        stats = stats_of(f"NET = {{{members}}}(5)")
        assert stats.links == 80
        assert stats.is_sparse(factor=3)

    def test_empty_graph(self):
        stats = stats_of("")
        assert stats.nodes == 0
        assert stats.sparsity == 0.0
