"""Zero-copy reader: mmap lifetime, ragged files, and the bytes
fallback staying byte-identical."""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

import pytest

from repro.core.pathalias import Pathalias
from repro.service import store
from repro.service.store import (
    SnapshotError,
    SnapshotReader,
    build_snapshot,
)

from tests.conftest import PAPER_1981_MAP

DATA = Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def snap_path(tmp_path_factory):
    """One snapshot on disk, shared read-only by this module."""
    path = DATA / "d.backbone"
    graph = Pathalias().build([(path.name, path.read_text())])
    out = tmp_path_factory.mktemp("store") / "backbone.snap"
    build_snapshot(graph, out)
    return out


def other_snapshot(tmp_path) -> Path:
    """A second, different snapshot (for swap scenarios)."""
    graph = Pathalias().build([("d.map", PAPER_1981_MAP)])
    out = tmp_path / "other.snap"
    build_snapshot(graph, out)
    return out


class TestMappedReader:
    def test_open_maps_by_default(self, snap_path):
        reader = SnapshotReader.open(snap_path)
        assert reader.mapped
        assert not reader.closed
        reader.close()

    def test_fallback_reader_is_byte_identical(self, snap_path):
        """use_mmap=False serves the same bytes through the same
        surface: every section export and every answer matches the
        mapped reader exactly."""
        mapped = SnapshotReader.open(snap_path)
        plain = SnapshotReader.open(snap_path, use_mmap=False)
        assert not plain.mapped
        assert plain.version == mapped.version
        assert plain.sources() == mapped.sources()
        assert plain.graph_section() == mapped.graph_section()
        assert plain.heuristics() == mapped.heuristics()
        for source in mapped.sources():
            assert plain.table_bytes(source) \
                == mapped.table_bytes(source)
            mt, pt = mapped.table(source), plain.table(source)
            assert list(pt.records()) == list(mt.records())
            assert pt.unreachable() == mt.unreachable()
            assert pt.tree_links() == mt.tree_links()
            assert pt.state_cost_map() == mt.state_cost_map()
        mapped.close()
        plain.close()

    def test_no_mmap_module_falls_back(self, snap_path, monkeypatch):
        """A platform without mmap still opens snapshots (bytes path)."""
        monkeypatch.setattr(store, "_mmap", None)
        reader = SnapshotReader.open(snap_path)
        assert not reader.mapped
        source = reader.sources()[0]
        assert len(reader.table(source)) > 0
        reader.close()

    def test_lookup_answers_off_the_map(self, snap_path):
        reader = SnapshotReader.open(snap_path)
        table = reader.table("ihnp4")
        hit = table.lookup("mcvax")
        assert hit is not None and "mcvax" in hit[1]
        assert table.lookup("no-such-host") is None
        reader.close()

    def test_table_bytes_are_real_bytes(self, snap_path):
        """Incremental updates splice table_bytes into new files; a
        memoryview there would pin the old map and break writes."""
        reader = SnapshotReader.open(snap_path)
        source = reader.sources()[0]
        assert type(reader.table_bytes(source)) is bytes
        assert type(reader.graph_section()) is bytes
        reader.close()

    def test_context_manager_closes(self, snap_path):
        with SnapshotReader.open(snap_path) as reader:
            assert not reader.closed
        assert reader.closed


class TestMmapLifetime:
    def test_table_survives_reader_close(self, snap_path):
        """A pinned table keeps the map alive after close: the swap
        scenario's in-flight request, with no BufferError anywhere."""
        reader = SnapshotReader.open(snap_path)
        table = reader.table("ihnp4")
        before = list(table.records())
        reader.close()  # must not raise BufferError
        assert list(table.records()) == before
        assert table.lookup("mcvax") is not None

    def test_close_is_idempotent(self, snap_path):
        reader = SnapshotReader.open(snap_path)
        reader.close()
        reader.close()
        assert reader.closed

    def test_closed_reader_accessors_raise(self, snap_path):
        reader = SnapshotReader.open(snap_path)
        source = reader.sources()[0]
        reader.close()
        with pytest.raises(SnapshotError, match="closed"):
            reader.table(source)
        with pytest.raises(SnapshotError, match="closed"):
            reader.table_bytes(source)
        with pytest.raises(SnapshotError, match="closed"):
            reader.graph_section()
        with pytest.raises(SnapshotError, match="closed"):
            reader.heuristics()
        # metadata parsed at open time stays answerable
        assert reader.size > 0
        assert reader.sources() == [source] + reader.sources()[1:]

    def test_hot_swap_drains_old_map(self, snap_path, tmp_path):
        """The daemon's RELOAD shape: open new, close old while a
        request still holds the old table; both keep answering."""
        old = SnapshotReader.open(snap_path)
        pinned = old.table("ihnp4")
        hit = pinned.lookup("mcvax")
        new = SnapshotReader.open(other_snapshot(tmp_path))
        old.close()
        assert pinned.lookup("mcvax") == hit  # old map still valid
        assert new.table(new.sources()[0]) is not None
        new.close()
        # the drained table still answers even after both closes
        assert pinned.lookup("mcvax") == hit

    def test_open_failure_releases_the_map(self, snap_path, tmp_path):
        """A validation failure inside open() must not leak the
        mapping (the error path closes it before raising)."""
        bad = tmp_path / "bad.snap"
        raw = bytearray(snap_path.read_bytes())
        raw[-1] ^= 0xFF  # break the payload CRC
        bad.write_bytes(bytes(raw))
        for _ in range(64):  # would exhaust fds/maps if leaked
            with pytest.raises(SnapshotError, match="CRC"):
                SnapshotReader.open(bad)


class TestRaggedFiles:
    """Truncated and mid-write files always fail as SnapshotError
    naming the file — never a bare struct.error or IndexError."""

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.snap"
        empty.write_bytes(b"")
        with pytest.raises(SnapshotError, match="truncated"):
            SnapshotReader.open(empty)

    def test_truncation_at_every_coarse_offset(self, snap_path,
                                               tmp_path):
        """Cut the file at offsets across header, sections, and index;
        every ragged prefix must raise SnapshotError (with the path),
        through both the mapped and the bytes reader."""
        raw = snap_path.read_bytes()
        ragged = tmp_path / "ragged.snap"
        offsets = set(range(0, len(raw), max(1, len(raw) // 64)))
        offsets |= {1, store._HEADER.size - 1, store._HEADER.size,
                    store._HEADER.size + 1, len(raw) - 1}
        for cut in sorted(offsets):
            ragged.write_bytes(raw[:cut])
            for use_mmap in (True, False):
                with pytest.raises(SnapshotError) as err:
                    SnapshotReader.open(ragged, use_mmap=use_mmap)
                assert "ragged.snap" in str(err.value)

    def test_midwrite_header_with_short_payload(self, snap_path,
                                                tmp_path):
        """A mid-write file can carry a complete, self-consistent
        header before the payload has landed; the reader must report
        the out-of-bounds section, not index past the buffer."""
        raw = snap_path.read_bytes()
        partial = tmp_path / "partial.snap"
        partial.write_bytes(raw[:store._HEADER.size + 16])
        with pytest.raises(SnapshotError) as err:
            SnapshotReader.open(partial)
        message = str(err.value)
        assert "partial.snap" in message
        assert "outside" in message or "truncated" in message

    def test_oversized_source_count_names_the_index(self, snap_path,
                                                    tmp_path):
        """Corrupt the header's source count (CRC re-stamped so only
        the index check can catch it): the error names the index
        instead of surfacing a struct.error from entry decoding."""
        raw = bytearray(snap_path.read_bytes())
        # header layout: magic 8s, version I, flags I, source_count I,
        # crc I, then the section pointers
        struct.pack_into("<I", raw, 16, 1_000_000)
        with pytest.raises(SnapshotError, match="index"):
            self._open_restamped(raw, tmp_path)

    @staticmethod
    def _open_restamped(raw: bytearray, tmp_path) -> SnapshotReader:
        """Re-stamp the payload CRC and open the doctored file."""
        crc = zlib.crc32(bytes(raw[store._HEADER.size:])) & 0xFFFFFFFF
        struct.pack_into("<I", raw, 20, crc)
        doctored = tmp_path / "doctored.snap"
        doctored.write_bytes(bytes(raw))
        return SnapshotReader.open(doctored)

    def test_flipped_payload_byte_fails_crc(self, snap_path, tmp_path):
        raw = bytearray(snap_path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        bad = tmp_path / "flip.snap"
        bad.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="CRC"):
            SnapshotReader.open(bad)

    def test_malformed_table_section_names_offset(self, snap_path,
                                                  tmp_path):
        """Damage inside a table section (CRC re-stamped): the error
        names the source and the section's file offset."""
        reader = SnapshotReader.open(snap_path)
        source = reader.sources()[0]
        off = reader._entries[reader._find(source)][0]
        reader.close()
        raw = bytearray(snap_path.read_bytes())
        struct.pack_into("<I", raw, off, 0xFFFFFFF0)  # absurd tag count
        with pytest.raises(SnapshotError) as err:
            self._open_restamped(raw, tmp_path).table(source)
        message = str(err.value)
        assert source in message
        assert f"at file offset {off}" in message
