"""Unit tests for allocation traces."""

import pytest

from repro.adt.trace import (
    AllocationTrace,
    TraceEvent,
    churning_trace,
    pathalias_trace,
)


class TestValidation:
    def test_valid_sequence(self):
        trace = AllocationTrace([
            TraceEvent("alloc", 0, 10),
            TraceEvent("alloc", 1, 20),
            TraceEvent("free", 0),
            TraceEvent("free", 1),
        ])
        trace.validate()

    def test_double_alloc_rejected(self):
        trace = AllocationTrace([
            TraceEvent("alloc", 0, 10),
            TraceEvent("alloc", 0, 10),
        ])
        with pytest.raises(ValueError):
            trace.validate()

    def test_free_of_dead_block_rejected(self):
        trace = AllocationTrace([TraceEvent("free", 7)])
        with pytest.raises(ValueError):
            trace.validate()

    def test_bad_op_rejected(self):
        trace = AllocationTrace([TraceEvent("mmap", 0, 10)])
        with pytest.raises(ValueError):
            trace.validate()


class TestMeasures:
    def test_total_allocated(self):
        trace = AllocationTrace([
            TraceEvent("alloc", 0, 10),
            TraceEvent("alloc", 1, 30),
            TraceEvent("free", 0),
        ])
        assert trace.total_allocated() == 40

    def test_live_peak(self):
        trace = AllocationTrace([
            TraceEvent("alloc", 0, 10),
            TraceEvent("free", 0),
            TraceEvent("alloc", 1, 30),
        ])
        assert trace.live_bytes_peak() == 30


class TestGenerators:
    def test_pathalias_trace_shape(self):
        """Phase 1 allocates heavily with little freeing; phase 2 frees
        just about everything — the paper's stated pattern."""
        trace = pathalias_trace(nodes=300, links=900, seed=0)
        trace.validate()
        events = trace.events
        half = len(events) // 2
        frees_first_half = sum(1 for e in events[:half] if e.op == "free")
        frees_second_half = sum(1 for e in events[half:] if e.op == "free")
        assert frees_second_half > 5 * max(frees_first_half, 1)

    def test_pathalias_trace_deterministic(self):
        a = pathalias_trace(nodes=50, links=100, seed=9)
        b = pathalias_trace(nodes=50, links=100, seed=9)
        assert a.events == b.events

    def test_churning_trace_interleaves(self):
        trace = churning_trace(operations=1000, seed=1)
        trace.validate()
        half = len(trace.events) // 2
        frees_first_half = sum(1 for e in trace.events[:half]
                               if e.op == "free")
        assert frees_first_half > 100

    def test_everything_freed_at_end(self):
        for trace in (pathalias_trace(100, 300), churning_trace(500)):
            live = set()
            for event in trace:
                if event.op == "alloc":
                    live.add(event.block)
                else:
                    live.discard(event.block)
            assert not live
