"""Traffic/load-analysis tests."""

from repro import Pathalias
from repro.netsim.traffic import analyze_routes, compare_cost_tables

from tests.conftest import PAPER_1981_MAP


class TestAnalysis:
    def test_paper_map_loads(self):
        table = Pathalias().run_text(PAPER_1981_MAP, localhost="unc")
        report = analyze_routes(table)
        # duke relays everything except the local and duke routes.
        assert report.relay_counts["duke"] == 5
        # research relays ucbvax, mit-ai, stanford.
        assert report.relay_counts["research"] == 3
        # ucbvax relays the two pure-ARPANET hosts.
        assert report.relay_counts["ucbvax"] == 2

    def test_hop_counts(self):
        table = Pathalias().run_text(PAPER_1981_MAP, localhost="unc")
        report = analyze_routes(table)
        assert report.total_routes == 7
        # unc:0 duke:0 phs:1 research:1 ucbvax:2 mit-ai:3 stanford:3
        assert report.total_hops == 10
        assert abs(report.mean_hops - 10 / 7) < 1e-9

    def test_top_relays_ordering(self):
        table = Pathalias().run_text(PAPER_1981_MAP, localhost="unc")
        report = analyze_routes(table)
        top = report.top_relays(2)
        assert top[0] == ("duke", 5)
        assert top[1] == ("research", 3)

    def test_concentration(self):
        table = Pathalias().run_text(PAPER_1981_MAP, localhost="unc")
        report = analyze_routes(table)
        assert abs(report.concentration() - 5 / 10) < 1e-9

    def test_direct_routes_carry_no_relay_load(self):
        table = Pathalias().run_text("a b(10)", localhost="a")
        report = analyze_routes(table)
        assert report.total_routes == 2
        assert report.total_hops == 0  # both routes are direct
        assert report.mean_hops == 0.0
        assert report.max_load == 0
        assert report.concentration() == 0.0

    def test_star_topology_concentrates_on_hub(self):
        text = "hub " + ", ".join(f"s{i}(10)" for i in range(10)) + \
            "\n" + "\n".join(f"s{i} hub(10)" for i in range(10))
        table = Pathalias().run_text(text, localhost="s0")
        report = analyze_routes(table)
        assert report.top_relays(1)[0][0] == "hub"
        assert report.concentration() > 0.8


class TestVerdict:
    def test_compare_identical(self):
        text = compare_cost_tables(1.5, 1.5, "a", "b")
        assert "identical" in text

    def test_compare_differing(self):
        text = compare_cost_tables(1.2, 1.8, "pragmatic", "theory")
        assert text.startswith("pragmatic")
