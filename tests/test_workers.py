"""Multi-worker serving: the control mesh, aggregated STATS, and
pool-wide RELOAD — in-process and through real SO_REUSEPORT workers."""

from __future__ import annotations

import asyncio
import socket
import subprocess
import sys
import threading

import pytest

from repro.core.pathalias import Pathalias
from repro.service.daemon import DaemonRouteDatabase, RouteService
from repro.service.store import build_snapshot

MAP_V1 = """\
a\tb(10), c(100)
b\ta(10), c(10)
c\tb(10), a(100), d(10)
d\tc(10)
"""

#: same topology, pricier bridge: a's route to c and d changes.
MAP_V2 = MAP_V1.replace("b\ta(10), c(10)", "b\ta(10), c(500)")

needs_reuseport = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="SO_REUSEPORT unavailable on this platform")


def make_snapshot(text, path):
    build_snapshot(Pathalias().build([("d.map", text)]), path)
    return str(path)


@pytest.fixture()
def snapshots(tmp_path):
    return (make_snapshot(MAP_V1, tmp_path / "v1.snap"),
            make_snapshot(MAP_V2, tmp_path / "v2.snap"))


async def request(reader, writer, line: str) -> str:
    writer.write(line.encode() + b"\n")
    await writer.drain()
    return (await reader.readline()).decode().rstrip("\n")


def parse_stats(reply: str) -> dict:
    return dict(token.split("=", 1) for token in reply[3:].split())


class TestControlMesh:
    """Two RouteService instances wired into a worker mesh in one
    event loop — the coordination logic without process spawning."""

    def test_stats_aggregate_and_pool_reload(self, snapshots):
        snap1, snap2 = snapshots

        async def scenario():
            svc = [RouteService(snap1, default_source="a")
                   for _ in range(2)]
            controls = []
            for wid, service in enumerate(svc):
                service.worker_id = wid
                controls.append(await asyncio.start_server(
                    service.handle_connection, "127.0.0.1", 0))
            peers = {wid: c.sockets[0].getsockname()[1]
                     for wid, c in enumerate(controls)}
            for service in svc:
                service.worker_peers = peers

            # traffic lands on worker 1 only
            r1, w1 = await asyncio.open_connection(
                "127.0.0.1", peers[1])
            assert (await request(r1, w1, "ROUTE d")) == \
                "OK 30 d b!c!d!%s b!c!d!%s"

            # STATS asked of worker 0 aggregates the whole pool
            r0, w0 = await asyncio.open_connection(
                "127.0.0.1", peers[0])
            stats = parse_stats(await request(r0, w0, "STATS"))
            assert stats["workers"] == "2"
            assert stats["lookups"] == "1"
            assert stats["worker_0"] == "ok:0"
            assert stats["worker_1"] == "ok:1"
            assert stats["n_route"] == "1"

            # WSTATS stays raw and names the answering worker
            wstats = await request(r0, w0, "WSTATS")
            assert wstats.startswith("OK worker=0 ")
            assert parse_stats(wstats)["lookups"] == "0"

            # RELOAD through worker 0 swaps worker 1 too
            reply = await request(r0, w0, f"RELOAD {snap2}")
            assert reply.startswith("OK reloaded")
            assert svc[0].reloads == 1 and svc[1].reloads == 1
            assert (await request(r1, w1, "ROUTE d")) == \
                "OK 110 d c!d!%s c!d!%s"
            stats = parse_stats(await request(r0, w0, "STATS"))
            assert stats["reloads"] == "2"

            # a dead sibling degrades its health token, nothing else
            controls[1].close()
            await controls[1].wait_closed()
            stats = parse_stats(await request(r0, w0, "STATS"))
            assert stats["worker_1"] == "down"
            assert stats["workers"] == "2"
            # ... and fails a pool RELOAD loudly instead of silently
            # leaving the pool half-swapped
            reply = await request(r0, w0, f"RELOAD {snap1}")
            assert reply.startswith("ERR reload worker 1")
            w0.close()
            w1.close()
            controls[0].close()
            await controls[0].wait_closed()

        asyncio.run(scenario())

    def test_single_worker_mode_is_unchanged(self, snapshots):
        """No peers configured: STATS has no workers= token and
        RELOAD broadcasts to nobody — the pre-worker wire behavior."""
        snap1, _ = snapshots

        async def scenario():
            service = RouteService(snap1, default_source="a")
            reply = await service.handle_line("STATS", {"source": "a"})
            assert "workers=" not in reply
            wreply = await service.handle_line("WSTATS",
                                               {"source": "a"})
            assert wreply.startswith("OK worker=0 ")

        asyncio.run(scenario())


@needs_reuseport
class TestWorkerPool:
    """A real ``serve --workers 2`` subprocess pool."""

    def spawn(self, snap, workers=2):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", snap,
             "--port", "0", "--workers", str(workers)],
            stderr=subprocess.PIPE, text=True)
        for line in proc.stderr:
            if "listening on" in line:
                host, _, port = line.rsplit(
                    "listening on", 1)[1].strip().rpartition(":")
                return proc, (host, int(port))
        raise AssertionError("worker pool never reported listening")

    def test_pool_serves_aggregates_and_reloads(self, snapshots):
        snap1, snap2 = snapshots
        proc, addr = self.spawn(snap1)
        try:
            # spread connections over the pool: the kernel balances,
            # so with 12 connections both workers see traffic almost
            # surely — but only the total is asserted (deterministic)
            for _ in range(12):
                with DaemonRouteDatabase(addr, source="a") as db:
                    assert db.resolve("d").address == "b!c!d!%s"
            with DaemonRouteDatabase(addr, source="a") as db:
                stats = db.stats()
                assert stats["workers"] == "2"
                assert stats["lookups"] == "12"
                assert stats["worker_0"].startswith("ok:")
                assert stats["worker_1"].startswith("ok:")

                # reload under load: lookups keep answering while the
                # pool swaps; afterwards every worker serves v2
                stop = threading.Event()
                failures: list = []

                def hammer():
                    with DaemonRouteDatabase(addr, source="a") as h:
                        while not stop.is_set():
                            try:
                                if h.resolve("d").address not in (
                                        "b!c!d!%s", "c!d!%s"):
                                    failures.append("bad answer")
                            except Exception as exc:  # noqa: BLE001
                                failures.append(repr(exc))

                thread = threading.Thread(target=hammer)
                thread.start()
                try:
                    assert db.reload(snap2) == 4
                finally:
                    stop.set()
                    thread.join(timeout=10)
                assert failures == []
                assert db.stats()["reloads"] == "2"
            for _ in range(8):
                with DaemonRouteDatabase(addr, source="a") as db:
                    assert db.resolve("d").address == "c!d!%s"
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_workers_rejected_with_federation_flags(self, snapshots):
        snap1, _ = snapshots
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve",
             "--shard", f"one={snap1}", "--workers", "2"],
            capture_output=True, text=True, timeout=60)
        assert proc.returncode == 1
        assert "--workers" in proc.stderr
