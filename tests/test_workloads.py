"""Message-workload and day-simulation tests."""

import pytest

from repro import Pathalias
from repro.mailer.address import MailerStyle
from repro.netsim.mapgen import MapParams, generate_map
from repro.netsim.workloads import (
    DayReport,
    WorkloadParams,
    generate_workload,
    run_day,
)


@pytest.fixture(scope="module")
def small_world():
    generated = generate_map(MapParams.small(seed=77))
    run = Pathalias().run_detailed(generated.files, generated.localhost)
    return generated, run


class TestGeneration:
    def test_message_count(self, small_world):
        _, run = small_world
        params = WorkloadParams(messages=200, list_posts=0)
        workload = generate_workload(run.table, params)
        assert len(workload) == 200

    def test_list_posts_fan_out(self, small_world):
        _, run = small_world
        params = WorkloadParams(messages=0, list_posts=2, list_size=10)
        workload = generate_workload(run.table, params)
        assert len(workload) == 20
        assert all(m.kind == "list" for m in workload)

    def test_deterministic(self, small_world):
        _, run = small_world
        a = generate_workload(run.table, WorkloadParams(seed=5))
        b = generate_workload(run.table, WorkloadParams(seed=5))
        assert a == b

    def test_locality_shapes_distribution(self, small_world):
        _, run = small_world
        near_heavy = generate_workload(
            run.table, WorkloadParams(messages=400, locality=1.0,
                                      reply_fraction=0, list_posts=0,
                                      seed=1))
        far_heavy = generate_workload(
            run.table, WorkloadParams(messages=400, locality=0.0,
                                      reply_fraction=0, list_posts=0,
                                      seed=1))
        costs = {r.name: r.cost for r in run.table}
        near_mean = sum(costs[m.recipient]
                        for m in near_heavy) / len(near_heavy)
        far_mean = sum(costs[m.recipient]
                       for m in far_heavy) / len(far_heavy)
        assert near_mean < far_mean

    def test_recipients_are_routable(self, small_world):
        _, run = small_world
        workload = generate_workload(run.table, WorkloadParams(seed=2))
        for message in workload:
            assert run.table.lookup(message.recipient) is not None


class TestDaySimulation:
    def test_all_mail_gets_through(self, small_world):
        """The philosophy line, measured at system level."""
        generated, run = small_world
        workload = generate_workload(run.table,
                                     WorkloadParams(messages=300))
        report = run_day(run.graph, run.table, generated.localhost,
                         workload)
        assert report.delivery_rate == 1.0, report.failures_by_kind
        assert report.total == len(workload)

    def test_hops_accumulate(self, small_world):
        generated, run = small_world
        workload = generate_workload(run.table,
                                     WorkloadParams(messages=100))
        report = run_day(run.graph, run.table, generated.localhost,
                         workload)
        assert report.mean_hops > 0

    def test_relay_load_concentrates_on_hubs(self, small_world):
        generated, run = small_world
        workload = generate_workload(run.table,
                                     WorkloadParams(messages=300))
        report = run_day(run.graph, run.table, generated.localhost,
                         workload)
        busiest = report.busiest_relays(3)
        assert busiest
        # Hubs are backbone hosts; the top relay should be one.
        top_names = {name for name, _ in busiest}
        assert top_names & set(generated.backbone)

    def test_unknown_recipient_counts_as_failure(self, small_world):
        generated, run = small_world
        from repro.netsim.workloads import Message

        report = run_day(run.graph, run.table, generated.localhost,
                         [Message("no-such-host", "local")])
        assert report.failed == 1
        assert report.delivery_rate == 0.0

    def test_bang_rigid_world_still_delivers_bang_routes(self,
                                                         small_world):
        generated, run = small_world
        workload = generate_workload(run.table,
                                     WorkloadParams(messages=150,
                                                    seed=9))
        pure_bang = [m for m in workload
                     if "@" not in run.table.route(m.recipient)]
        report = run_day(run.graph, run.table, generated.localhost,
                         pure_bang,
                         default_style=MailerStyle.BANG_RIGID)
        assert report.delivery_rate == 1.0


class TestDayReport:
    def test_empty_day(self):
        report = DayReport()
        assert report.delivery_rate == 1.0
        assert report.mean_hops == 0.0
        assert report.busiest_relays() == []
