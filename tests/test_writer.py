"""Writer (declaration renderer) unit tests."""

from repro.netsim.writer import WRAP_COLUMN, render_declaration, render_file
from repro.parser.ast import (
    AdjustDecl,
    AliasDecl,
    DeadDecl,
    DeleteDecl,
    Direction,
    FileDecl,
    GatewayedDecl,
    HostDecl,
    LinkSpec,
    NetDecl,
    PrivateDecl,
)
from repro.parser.grammar import parse_text


class TestRendering:
    def test_host_default_syntax(self):
        decl = HostDecl("a", (LinkSpec("b", cost=10),
                              LinkSpec("c", cost=None)))
        assert render_declaration(decl) == "a\tb(10), c"

    def test_host_right_operator(self):
        decl = HostDecl("a", (LinkSpec("b", "@", Direction.RIGHT, 10),))
        assert render_declaration(decl) == "a\t@b(10)"

    def test_host_explicit_left_operator(self):
        decl = HostDecl("a", (LinkSpec("b", ":", Direction.LEFT, 10),))
        assert render_declaration(decl) == "a\tb:(10)"

    def test_net(self):
        decl = NetDecl("ARPA", ("x", "y"), "@", Direction.RIGHT, 95)
        assert render_declaration(decl) == "ARPA = @{x, y}(95)"

    def test_net_default(self):
        decl = NetDecl("NET", ("x",), "!", Direction.LEFT, None)
        assert render_declaration(decl) == "NET = {x}"

    def test_alias(self):
        assert render_declaration(AliasDecl("a", ("b", "c"))) == "a = b, c"

    def test_keywords(self):
        assert render_declaration(PrivateDecl(("p",))) == "private {p}"
        assert render_declaration(GatewayedDecl(("N",))) == \
            "gatewayed {N}"
        assert render_declaration(FileDecl("d.x")) == 'file "d.x"'
        assert render_declaration(DeadDecl(("h",), (("a", "b"),))) == \
            "dead {h, a!b}"
        assert render_declaration(DeleteDecl((), (("a", "b"),))) == \
            "delete {a!b}"
        assert render_declaration(AdjustDecl((("h", -5),))) == \
            "adjust {h(-5)}"

    def test_banner(self):
        text = render_file([AliasDecl("a", ("b",))], banner="hello\nworld")
        assert text.startswith("# hello\n# world\n")


class TestWrapping:
    def test_long_link_list_wraps_with_continuation(self):
        links = tuple(LinkSpec(f"host{i:03d}", cost=100)
                      for i in range(30))
        text = render_declaration(HostDecl("hub", links))
        lines = text.split("\n")
        assert len(lines) > 1
        assert all(len(line) <= WRAP_COLUMN + 12 for line in lines)
        for line in lines[1:]:
            assert line.startswith("\t")

    def test_wrapped_output_reparses_identically(self):
        links = tuple(LinkSpec(f"host{i:03d}", cost=i + 1)
                      for i in range(40))
        decl = HostDecl("hub", links)
        (reparsed,) = parse_text(render_declaration(decl))
        assert reparsed.name == "hub"
        assert [(l.name, l.cost) for l in reparsed.links] == \
            [(l.name, l.cost) for l in links]
