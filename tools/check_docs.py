#!/usr/bin/env python
"""Keep the documentation suite honest.

Four checks, each of which has actually drifted in this repo's past:

1. **Protocol page vs. the daemons.**  ``docs/protocol.md`` carries
   machine-readable markers (``<!-- verbs:daemon ... -->`` and
   ``<!-- verbs:federation ... -->``).  Each marker must list exactly
   the verbs the corresponding service class implements (its ``VERBS``
   table), and every listed verb must also have a ``### VERB`` heading
   in the page, so the marker cannot drift from the prose.

2. **Links.**  Every relative markdown link in README.md and
   ``docs/*.md`` must point at a file that exists.

3. **Docstrings.**  Every public module/class/function/method under
   ``src/repro/service/`` (plus ``core/fastmap.py``) carries a
   docstring — the same D1 surface ruff enforces in CI, checked here
   without needing ruff installed (and mirrored into the tier-1 suite
   by ``tests/test_docs.py``).

4. **Snapshot-format page vs. the writer.**  ``docs/snapshot-format.md``
   carries a ``<!-- table-tags ... -->`` marker that must list exactly
   the v2 table-section tags the snapshot writer emits
   (``repro.service.store.TABLE_SECTION_TAGS``), and each tag must be
   described (appear in backticks) in the page body.

Usage::

    PYTHONPATH=src python tools/check_docs.py

Exits non-zero with one line per finding.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: modules whose public API must be fully docstringed (ruff D1 scope
#: plus the compiled engine the docs lean on).
DOCSTRING_SCOPE = ("src/repro/service", "src/repro/core/fastmap.py")

#: markdown files whose relative links must resolve.
LINKED_PAGES = ("README.md", "docs/architecture.md",
                "docs/protocol.md", "docs/snapshot-format.md")


#: where each service's protocol dispatch lives, for the AST check.
SERVICE_SOURCES = {
    "daemon": ("src/repro/service/daemon.py", "RouteService"),
    "federation": ("src/repro/service/federation.py",
                   "FederationService"),
}


def _service_verbs() -> dict[str, tuple]:
    """The live verb tables, imported from the daemons themselves."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.service.daemon import RouteService
    from repro.service.federation import FederationService

    return {"daemon": RouteService.VERBS,
            "federation": FederationService.VERBS}


def _dispatched_verbs(path: Path, class_name: str) -> set:
    """The verbs ``class_name.handle_line`` actually compares
    ``command`` against, read from the source AST — so the VERBS
    tables cannot drift from the dispatch they describe."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef)
                and node.name == class_name):
            continue
        for fn in node.body:
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and fn.name == "handle_line":
                verbs = set()
                for sub in ast.walk(fn):
                    if isinstance(sub, ast.Compare) \
                            and isinstance(sub.left, ast.Name) \
                            and sub.left.id == "command":
                        for comp in sub.comparators:
                            if isinstance(comp, ast.Constant) \
                                    and isinstance(comp.value, str):
                                verbs.add(comp.value)
                return verbs
    return set()


def check_dispatch(problems: list) -> None:
    """Each VERBS table names exactly the verbs its handle_line
    dispatches (the protocol page is checked against VERBS, so this
    closes the loop: docs == VERBS == code)."""
    verbs_tables = _service_verbs()
    for service, (rel, class_name) in SERVICE_SOURCES.items():
        dispatched = _dispatched_verbs(REPO / rel, class_name)
        listed = set(verbs_tables[service])
        for verb in sorted(dispatched - listed):
            problems.append(
                f"{rel}: {class_name}.handle_line dispatches {verb} "
                f"but VERBS does not list it")
        for verb in sorted(listed - dispatched):
            problems.append(
                f"{rel}: VERBS lists {verb} but "
                f"{class_name}.handle_line never dispatches it")


def check_protocol(problems: list) -> None:
    """Marker sets and headings in docs/protocol.md match the code."""
    page = REPO / "docs" / "protocol.md"
    if not page.exists():
        problems.append(f"{page}: missing")
        return
    text = page.read_text()
    markers = dict(re.findall(r"<!--\s*verbs:(\w+)\s+([^>]*?)-->",
                              text))
    headings = set(re.findall(r"^### ([A-Z]+)\b", text, re.MULTILINE))
    for service, verbs in _service_verbs().items():
        if service not in markers:
            problems.append(
                f"docs/protocol.md: no <!-- verbs:{service} --> marker")
            continue
        documented = tuple(markers[service].split())
        if documented != verbs:
            problems.append(
                f"docs/protocol.md: verbs:{service} marker lists "
                f"{documented}, but the {service} implements {verbs}")
        for verb in verbs:
            if verb not in headings:
                problems.append(
                    f"docs/protocol.md: verb {verb} has no "
                    f"'### {verb}' section")
    for extra in sorted(markers.keys() - _service_verbs().keys()):
        problems.append(
            f"docs/protocol.md: marker verbs:{extra} matches no "
            f"service")


def check_snapshot_tags(problems: list) -> None:
    """docs/snapshot-format.md documents exactly the v2 table-section
    tags the snapshot writer emits."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.service.store import TABLE_SECTION_TAGS

    page = REPO / "docs" / "snapshot-format.md"
    if not page.exists():
        problems.append("docs/snapshot-format.md: missing")
        return
    text = page.read_text()
    match = re.search(r"<!--\s*table-tags\s+([^>]*?)-->", text)
    if match is None:
        problems.append(
            "docs/snapshot-format.md: no <!-- table-tags --> marker")
        return
    documented = tuple(match.group(1).split())
    if documented != TABLE_SECTION_TAGS:
        problems.append(
            f"docs/snapshot-format.md: table-tags marker lists "
            f"{documented}, but the writer emits "
            f"{TABLE_SECTION_TAGS}")
    for tag in TABLE_SECTION_TAGS:
        if f"`{tag}`" not in text:
            problems.append(
                f"docs/snapshot-format.md: section tag {tag} is "
                f"never described (no `{tag}` in the page body)")


def check_links(problems: list) -> None:
    """Relative markdown links in the doc pages resolve to files."""
    for rel in LINKED_PAGES:
        page = REPO / rel
        if not page.exists():
            problems.append(f"{rel}: missing")
            continue
        for match in re.finditer(r"\[[^\]]+\]\(([^)\s]+)\)",
                                 page.read_text()):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue  # same-page anchor
            if not (page.parent / path).exists():
                problems.append(f"{rel}: broken link -> {target}")


def _missing_docstrings(path: Path) -> list:
    """Public defs without docstrings (ruff D100-D103 surface: module,
    classes, functions, methods; underscore names and function-nested
    defs are exempt, as are members of private classes)."""
    tree = ast.parse(path.read_text())
    out = []
    if not ast.get_docstring(tree):
        out.append((path, 1, "module"))

    def walk(node, private: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                is_private = private or child.name.startswith("_")
                if not is_private and not ast.get_docstring(child):
                    out.append((path, child.lineno, child.name))
                walk(child, is_private)
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                if not private and not child.name.startswith("_") \
                        and not ast.get_docstring(child):
                    out.append((path, child.lineno, child.name))
                # function-nested defs are never public: do not recurse

    walk(tree, False)
    return out


def check_docstrings(problems: list) -> None:
    """The D1 surface over the service tier is fully documented."""
    for scope in DOCSTRING_SCOPE:
        root = REPO / scope
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            for _, lineno, name in _missing_docstrings(path):
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: public "
                    f"{name!r} has no docstring")


def main() -> int:
    """Run all checks; print findings; 0 only when clean."""
    problems: list = []
    check_protocol(problems)
    check_dispatch(problems)
    check_snapshot_tags(problems)
    check_links(problems)
    check_docstrings(problems)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)",
              file=sys.stderr)
        return 1
    print("check_docs: protocol, format tags, links, and docstrings "
          "all clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
