#!/usr/bin/env python
"""Merge a benchmark artifact into BENCH_routing.json's trajectory.

The repo-root ``BENCH_routing.json`` records the numbers of whatever
machine last regenerated it — usually the 1-CPU dev runner, which
cannot produce meaningful pool-scaling (``batch.runs`` at jobs=2/4)
or multicore fan-out numbers.  CI *can*: the ``bench`` job uploads
its full ``BENCH_routing.json`` and the ``cluster`` job uploads a
fan-out-only document, both produced on the multicore runner.  This
tool imports such an artifact:

* a condensed **trajectory entry** (environment, batch pool-scaling
  runs, fan-out throughput + round trips per lookup) is appended to
  the document's ``trajectory`` list, so the history of the numbers
  — including superseded ones, like the pre-pipelining lockstep
  fan-out ratio — survives every regeneration;
* with ``--adopt``, the artifact's ``batch`` and/or
  ``service.fanout`` sections *replace* the document's, archiving
  the replaced values as their own trajectory entry first — this is
  how a multicore CI run becomes the headline number.

Usage::

    python tools/merge_bench.py artifact.json --source ci-multicore
    python tools/merge_bench.py fanout.json \
        --source ci-cluster --adopt fanout
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ADOPTABLE = ("batch", "fanout")


def condense(document: dict, source: str) -> dict:
    """A compact trajectory entry for ``document``'s headline
    numbers: who measured, on what, and what they saw."""
    entry: dict = {"source": source}
    if document.get("generated_at"):
        entry["recorded"] = document["generated_at"]
    if document.get("environment"):
        entry["environment"] = document["environment"]
    batch = document.get("batch", {})
    if batch.get("runs"):
        entry["batch_runs"] = [
            {k: run.get(k) for k in ("jobs", "tables_per_sec",
                                     "speedup_vs_serial")}
            for run in batch["runs"]]
    fanout = document.get("service", {}).get("fanout")
    if fanout:
        condensed = {k: fanout.get(k) for k in
                     ("inprocess_lookups_per_sec",
                      "fanout_lookups_per_sec",
                      "fanout_vs_inprocess")}
        for wire in ("lockstep", "pipelined"):
            if wire in fanout:
                condensed[wire] = {
                    k: fanout[wire].get(k)
                    for k in ("lookups_per_sec", "vs_inprocess",
                              "roundtrips_per_lookup")}
        entry["fanout"] = condensed
    return entry


def merge(bench: dict, artifact: dict, source: str,
          adopt: list[str]) -> list[str]:
    """Append ``artifact``'s trajectory entry to ``bench`` (and adopt
    the requested sections); returns a log of what happened."""
    log = []
    trajectory = bench.setdefault("trajectory", [])
    if adopt:
        # archive what is being replaced before it disappears
        previous = condense(bench, "superseded by "
                            + (source or "imported artifact"))
        if "batch_runs" in previous or "fanout" in previous:
            trajectory.append(previous)
            log.append("archived the replaced numbers")
    entry = condense(artifact, source)
    trajectory.append(entry)
    log.append(f"appended trajectory entry from {source!r}")
    for section in adopt:
        if section == "batch" and artifact.get("batch"):
            bench["batch"] = artifact["batch"]
            log.append("adopted batch pool-scaling runs")
        elif section == "fanout" and \
                artifact.get("service", {}).get("fanout"):
            bench.setdefault("service", {})["fanout"] = \
                artifact["service"]["fanout"]
            log.append("adopted service.fanout")
        else:
            log.append(f"artifact has no {section} section; skipped")
    return log


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="import a CI benchmark artifact into "
                    "BENCH_routing.json's trajectory")
    parser.add_argument("artifact",
                        help="the downloaded benchmark JSON")
    parser.add_argument("--bench",
                        default=str(REPO / "BENCH_routing.json"),
                        help="the document to merge into (default: "
                             "the repo root BENCH_routing.json)")
    parser.add_argument("--source", default="ci",
                        help="label recorded on the trajectory entry "
                             "(e.g. ci-multicore, ci-cluster)")
    parser.add_argument("--adopt", default="",
                        help="comma-separated sections the artifact "
                             "should *replace* in the document: "
                             f"{', '.join(ADOPTABLE)}")
    args = parser.parse_args(argv)

    adopt = [s for s in args.adopt.split(",") if s]
    unknown = [s for s in adopt if s not in ADOPTABLE]
    if unknown:
        print(f"merge_bench: unknown --adopt section(s): "
              f"{', '.join(unknown)}", file=sys.stderr)
        return 2
    artifact = json.loads(Path(args.artifact).read_text())
    bench_path = Path(args.bench)
    bench = json.loads(bench_path.read_text()) if bench_path.exists() \
        else {"benchmark": "BENCH_routing"}
    for line in merge(bench, artifact, args.source, adopt):
        print(f"merge_bench: {line}", file=sys.stderr)
    bench_path.write_text(json.dumps(bench, indent=2) + "\n")
    print(f"merge_bench: wrote {bench_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
