#!/usr/bin/env python3
"""Churn soak harness: replay a live revision stream against a
serving cluster while clients hammer it, and prove the answers.

The generator half lives in :mod:`repro.netsim.churn`: a seeded
synthetic federation (100k..1M nodes) plus a typed revision stream —
cost change, link add/drop, host retire, domain move — every event a
pure repricing over a structurally constant map, so the incremental
updater (:func:`repro.service.incremental.update_snapshot`) never
falls back to a full rebuild.  This driver is the serving half:

1. build the generation-0 snapshots and start a cluster — an
   in-process :class:`~repro.service.federation.FederationService` on
   a real TCP port, or (``--backend``) one spawned ``pathalias
   serve`` daemon per shard behind the same front end;
2. keep a configurable client mix (ROUTE/EXACT, pipelined tagged
   batches and lockstep, long-lived connections) hammering the
   cluster for the whole run — any ``ERR`` reply or dropped
   connection is an invariant violation;
3. replay the stream: apply each event to the live graphs,
   incrementally update the touched shards' snapshots
   (``full_threshold=1.0`` — a single full fallback fails the run),
   and push the swap through RELOAD.  In ``--backend`` mode the
   RELOAD goes *directly to the shard daemon*, and the front end must
   observe it through the NOTIFY push channel within
   ``--staleness-sec`` — the front end's own RELOAD verb is asserted
   unused;
4. after every generation, a **differential invariant checker**
   replays sampled SOURCE/ROUTE/EXACT probes over the wire and
   byte-compares each reply against an independent in-process oracle
   federation holding the same generation's snapshots — the oracle is
   pinned to ``dispatch="dict"`` (the paper's per-suffix walk), so
   when the cluster under test runs the default compiled automaton
   every probe also differentially proves the FSM against the dict
   walk; every
   ``--oracle-every`` generations the touched shard's snapshot is
   additionally rebuilt from scratch and byte-compared against the
   incrementally-updated file.  With ``--cache`` the cluster under
   test serves through the generation-stamped result cache while the
   oracle stays uncached (``dict`` dispatch forces its cache off), so
   the same byte-comparison proves no stale cached answer ever
   survives a RELOAD/NOTIFY invalidation;
5. STATS counters are polled each generation and asserted monotone.

Exit status is non-zero on any violation: a differential mismatch, a
stale or structural (full-fallback) update, a client error or dropped
connection, a non-monotone counter, or an unobserved backend reload.

Quick start (also the CI ``soak`` job, scaled down)::

    PYTHONPATH=src python tools/soak.py --nodes 2000 --events 60

Acceptance scale::

    PYTHONPATH=src python tools/soak.py --nodes 100000 --events 5000
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.netsim.churn import (  # noqa: E402
    ChurnParams,
    ChurnScenario,
    read_log,
    write_log,
)
from repro.service.federation import FederationService  # noqa: E402
from repro.service.daemon import serve  # noqa: E402
from repro.service.incremental import update_snapshot  # noqa: E402
from repro.service.store import build_snapshot  # noqa: E402

#: STATS counters that may only ever grow (the monotonicity invariant).
MONOTONE_KEYS = ("lookups", "hits", "misses", "reloads", "resyncs",
                 "connections", "n_route", "n_exact", "n_reload",
                 "n_cache_hits", "n_cache_misses",
                 "n_cache_invalidations")

#: How often the staleness poll re-reads SHARDS, seconds.
POLL_INTERVAL = 0.02


class Violations:
    """The run's sins, bucketed; any entry anywhere fails the run."""

    def __init__(self) -> None:
        self.differential: list[str] = []
        self.fallbacks: list[str] = []
        self.client_errors: list[str] = []
        self.dropped: list[str] = []
        self.stats: list[str] = []
        self.staleness: list[str] = []

    def total(self) -> int:
        """Violation count across every bucket."""
        return (len(self.differential) + len(self.fallbacks)
                + len(self.client_errors) + len(self.dropped)
                + len(self.stats) + len(self.staleness))

    def report(self) -> list[str]:
        """Human-readable lines, one per non-empty bucket."""
        out = []
        for label, bucket in (
                ("differential mismatches", self.differential),
                ("full-rebuild fallbacks", self.fallbacks),
                ("client errors", self.client_errors),
                ("dropped connections", self.dropped),
                ("stats regressions", self.stats),
                ("staleness violations", self.staleness)):
            if bucket:
                out.append(f"  {label}: {len(bucket)}")
                out.extend(f"    {line}" for line in bucket[:5])
                if len(bucket) > 5:
                    out.append(f"    ... and {len(bucket) - 5} more")
        return out


class Conn:
    """One line-protocol connection with lockstep helpers."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, host: str, port: int) -> "Conn":
        """Dial the daemon at ``host:port``."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, line: str) -> str:
        """One request out, one reply line back (lockstep)."""
        self.writer.write(line.encode("utf-8") + b"\n")
        await self.writer.drain()
        raw = await self.reader.readline()
        if not raw:
            raise ConnectionError("daemon closed the connection")
        return raw.decode("utf-8").rstrip("\n")

    def close(self) -> None:
        """Tear the connection down (best effort)."""
        try:
            self.writer.close()
        except Exception:
            pass


def _spawn_shard_daemon(snapshot_path: str, dispatch: str = "fsm",
                        cache: bool = False):
    """One ``pathalias serve`` subprocess on an ephemeral port;
    returns ``(proc, (host, port))`` parsed from its startup line."""
    import os
    import subprocess

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", snapshot_path,
         "--port", "0", "--dispatch", dispatch]
        + ([] if cache else ["--no-cache"]),
        stderr=subprocess.PIPE, text=True, env=env)
    chatter = []
    while True:
        line = proc.stderr.readline()
        if not line:
            proc.terminate()
            raise RuntimeError(
                "shard daemon failed to start: "
                + (" / ".join(c.strip() for c in chatter)
                   or "no output"))
        if "listening on" in line:
            host, _, port = line.rsplit("listening on", 1)[1] \
                .strip().rpartition(":")
            return proc, (host, int(port))
        chatter.append(line)


async def _client(idx: int, addr: tuple, scenario: ChurnScenario,
                  seed: int, pipelined: bool, stop: asyncio.Event,
                  latencies: list, violations: Violations) -> int:
    """One hammering client; returns its request count.

    Lockstep clients alternate ROUTE and EXACT one at a time;
    pipelined clients send tagged batches of eight and match replies
    by tag (replies may interleave with NOTIFY-era reload traffic and
    return out of order — the tag is the correlation).  Every reply
    must be ``OK``; anything else, or a torn connection, is a
    violation.  Each client re-homes (SOURCE) every 64 requests.
    """
    rng = random.Random((seed << 8) ^ idx)
    sources = scenario.sources
    dests = scenario.destinations
    count = 0
    try:
        conn = await Conn.open(*addr)
        reply = await conn.request(f"SOURCE {rng.choice(sources)}")
        if not reply.startswith("OK"):
            violations.client_errors.append(f"client{idx}: {reply}")
        while not stop.is_set():
            if count and count % 64 == 0:
                reply = await conn.request(
                    f"SOURCE {rng.choice(sources)}")
                if not reply.startswith("OK"):
                    violations.client_errors.append(
                        f"client{idx}: {reply}")
            if pipelined:
                tags = {}
                out = []
                for k in range(8):
                    verb = "ROUTE" if (count + k) % 2 else "EXACT"
                    tag = f"c{idx}x{count + k}"
                    tags[tag] = verb
                    out.append(f"@{tag} {verb} {rng.choice(dests)}")
                t0 = time.perf_counter()
                conn.writer.write(("\n".join(out) + "\n")
                                  .encode("utf-8"))
                await conn.writer.drain()
                for _ in range(len(tags)):
                    raw = await conn.reader.readline()
                    if not raw:
                        raise ConnectionError("EOF mid-batch")
                    reply = raw.decode("utf-8").rstrip("\n")
                    tag, _, rest = reply.partition(" ")
                    if not tag.startswith("@") or \
                            tags.pop(tag[1:], None) is None:
                        violations.client_errors.append(
                            f"client{idx}: unmatched frame {reply!r}")
                    elif not rest.startswith("OK"):
                        violations.client_errors.append(
                            f"client{idx}: {rest}")
                elapsed = time.perf_counter() - t0
                latencies.extend([elapsed / 8] * 8)
                count += 8
            else:
                verb = "ROUTE" if count % 2 else "EXACT"
                t0 = time.perf_counter()
                reply = await conn.request(
                    f"{verb} {rng.choice(dests)}")
                latencies.append(time.perf_counter() - t0)
                if not reply.startswith("OK"):
                    violations.client_errors.append(
                        f"client{idx}: {reply}")
                count += 1
        conn.close()
    except (ConnectionError, OSError) as exc:
        violations.dropped.append(f"client{idx}: {exc}")
    return count


def _parse_stats(reply: str) -> dict[str, int]:
    """Integer ``key=value`` tokens out of a STATS reply line."""
    out: dict[str, int] = {}
    for token in reply.split():
        key, eq, value = token.partition("=")
        if eq and value.lstrip("-").isdigit():
            out[key] = int(value)
    return out


async def _wait_resync(admin: Conn, target: int,
                       deadline: float) -> float | None:
    """Poll front-end STATS until its ``resyncs`` counter reaches
    ``target``; returns the observed latency, or None on timeout.

    The counter increments only after the NOTIFY-driven view swap
    completes under the swap lock, so seeing it reach the target
    means the front end is already serving the new generation.
    """
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < deadline:
        stats = _parse_stats(await admin.request("STATS"))
        if stats.get("resyncs", 0) >= target:
            return time.perf_counter() - t0
        await asyncio.sleep(POLL_INTERVAL)
    return None


async def _differential_check(admin: Conn, oracle: FederationService,
                              scenario: ChurnScenario, gen: int,
                              samples: int, seed: int,
                              violations: Violations) -> None:
    """Byte-compare sampled wire replies against the oracle.

    Each probe runs SOURCE + ROUTE (or EXACT) over the checker
    connection and through ``oracle.handle_line`` directly; the served
    cluster and the oracle hold the same snapshot generation, so every
    reply line must match byte for byte.
    """
    crng = random.Random((seed << 20) ^ gen)
    for n, (src, dst) in enumerate(
            scenario.sample_pairs(crng, samples)):
        verb = "ROUTE" if n % 2 else "EXACT"
        state = oracle.initial_state()
        for line in (f"SOURCE {src}", f"{verb} {dst}"):
            served = await admin.request(line)
            expected = await oracle.handle_line(line, state)
            if served != expected:
                violations.differential.append(
                    f"gen {gen} {line!r}: served {served!r} "
                    f"!= oracle {expected!r}")


async def _soak(args: argparse.Namespace, workdir: Path) -> dict:
    """The whole soak run; returns the result/metrics dict."""
    params = ChurnParams(nodes=args.nodes, events=args.events,
                         seed=args.seed, regions=args.regions,
                         hubs_per_region=args.hubs)
    scenario = ChurnScenario(params)
    graphs = scenario.build_graphs()
    violations = Violations()

    # The event log round-trips before anything is served: a log that
    # cannot reproduce its own stream would poison every replay.
    log_path = workdir / "churn.log"
    write_log(scenario, log_path)
    logged_params, logged_events = read_log(log_path)
    if logged_events != scenario.stream or \
            ChurnScenario(logged_params).stream != scenario.stream:
        violations.differential.append(
            "event log failed to round-trip its own stream")

    print(f"soak: {args.nodes} nodes, {scenario.regions} shards, "
          f"{len(scenario.stream)} events, seed {args.seed}, "
          f"dispatch={args.dispatch} (oracle: dict)"
          + (", result cache ON (oracle: uncached)" if args.cache
             else "")
          + (", backend daemons" if args.backend else ", local"),
          flush=True)

    paths: dict[str, str] = {}
    prev: dict[str, list[str]] = {name: []
                                  for name in scenario.shard_names}
    t0 = time.perf_counter()
    for name in scenario.shard_names:
        paths[name] = str(workdir / f"{name}.g0.snap")
        await asyncio.to_thread(build_snapshot, graphs[name],
                                paths[name])
    print(f"soak: built {len(paths)} generation-0 snapshots in "
          f"{time.perf_counter() - t0:.1f}s", flush=True)

    procs: list = []
    backend_admin: dict[str, Conn] = {}
    try:
        # -- the cluster under test -----------------------------------
        # --cache turns the generation-stamped result cache on for
        # the whole cluster under test (front end and any spawned
        # shard daemons); otherwise everything serves uncached, so
        # the legacy legs keep measuring the raw lookup path.  The
        # oracle below is always uncached (dict dispatch forces its
        # cache off), so a --cache run byte-compares cached replies
        # against an uncached oracle on every churn generation —
        # any stale answer surviving an invalidation is a mismatch.
        cache_size = None if args.cache else 0
        if args.backend:
            specs = {}
            for name in scenario.shard_names:
                proc, addr = await asyncio.to_thread(
                    _spawn_shard_daemon, paths[name], args.dispatch,
                    args.cache)
                procs.append(proc)
                specs[name] = f"{addr[0]}:{addr[1]}"
            front = await FederationService.create(
                backends=specs, pipeline=not args.no_pipeline,
                dispatch=args.dispatch, cache_size=cache_size)
        else:
            front = FederationService(dict(paths),
                                      dispatch=args.dispatch,
                                      cache_size=cache_size)
        server = await serve(front, "127.0.0.1", 0)
        addr = server.sockets[0].getsockname()[:2]
        if args.backend:
            for name, spec in specs.items():
                host, _, port = spec.rpartition(":")
                backend_admin[name] = await Conn.open(host, int(port))

        # -- the independent oracle -----------------------------------
        # pinned to the dict walk: with the cluster under test on the
        # default compiled automaton, every differential probe also
        # proves the FSM against the paper's per-suffix dispatch
        oracle = FederationService(dict(paths), dispatch="dict")

        # -- clients --------------------------------------------------
        stop = asyncio.Event()
        latencies: list[float] = []
        clients = [asyncio.create_task(_client(
            i, addr, scenario, args.seed,
            pipelined=(i % 2 == 0 and not args.no_pipeline),
            stop=stop, latencies=latencies, violations=violations))
            for i in range(args.clients)]
        admin = await Conn.open(*addr)
        last_stats = _parse_stats(await admin.request("STATS"))

        # -- the replay loop ------------------------------------------
        replay_t0 = time.perf_counter()
        reloads = 0
        scratch_checks = 0
        expected_resyncs = 0
        max_staleness = 0.0
        for event in scenario.stream:
            gen = event.gen
            for name in scenario.apply(event):
                new_path = str(workdir / f"{name}.g{gen + 1}.snap")
                report = await asyncio.to_thread(
                    update_snapshot, paths[name], graphs[name],
                    new_path, full_threshold=1.0)
                if report.mode != "incremental":
                    violations.fallbacks.append(
                        f"gen {gen} {name}: mode={report.mode} "
                        f"({report.reason})")
                if args.oracle_every and \
                        gen % args.oracle_every == 0:
                    scratch = str(workdir / f"{name}.scratch.snap")
                    await asyncio.to_thread(
                        build_snapshot, graphs[name], scratch)
                    scratch_checks += 1
                    if Path(scratch).read_bytes() != \
                            Path(new_path).read_bytes():
                        violations.differential.append(
                            f"gen {gen} {name}: incremental snapshot "
                            f"!= from-scratch build")
                if args.backend:
                    reply = await backend_admin[name].request(
                        f"RELOAD {new_path}")
                    if not reply.startswith("OK reloaded"):
                        violations.staleness.append(
                            f"gen {gen} {name}: backend refused "
                            f"reload: {reply}")
                    expected_resyncs += 1
                    seen = await _wait_resync(
                        admin, expected_resyncs, args.staleness_sec)
                    if seen is None:
                        violations.staleness.append(
                            f"gen {gen} {name}: front end did not "
                            f"observe {new_path} within "
                            f"{args.staleness_sec}s")
                    else:
                        max_staleness = max(max_staleness, seen)
                else:
                    reply = await admin.request(
                        f"RELOAD {name} {new_path}")
                    if not reply.startswith("OK reloaded"):
                        violations.staleness.append(
                            f"gen {gen} {name}: reload refused: "
                            f"{reply}")
                await oracle.reload_shard(name, new_path)
                reloads += 1
                prev[name].append(paths[name])
                paths[name] = new_path
                if len(prev[name]) > 2:  # keep disk usage bounded
                    Path(prev[name].pop(0)).unlink(missing_ok=True)

            await _differential_check(admin, oracle, scenario, gen,
                                      args.samples, args.seed,
                                      violations)
            stats = _parse_stats(await admin.request("STATS"))
            for key in MONOTONE_KEYS:
                if stats.get(key, 0) < last_stats.get(key, 0):
                    violations.stats.append(
                        f"gen {gen}: {key} went backwards "
                        f"({last_stats.get(key)} -> "
                        f"{stats.get(key)})")
            last_stats = stats
            if not args.quiet and (gen + 1) % 100 == 0:
                rate = (gen + 1) / (time.perf_counter() - replay_t0)
                print(f"soak: gen {gen + 1}/"
                      f"{len(scenario.stream)} "
                      f"({rate:.1f} events/s)", flush=True)
        replay_s = time.perf_counter() - replay_t0

        # A --cache run in which the cache never answered anything
        # proved nothing; the differential probes alone re-ask the
        # same hot pairs every generation, so zero hits means the
        # cache layer is not actually in the serving path.
        if args.cache and front.cache is not None \
                and front.cache.hits == 0:
            violations.stats.append(
                "--cache run finished with zero cache hits — the "
                "cache layer never served a reply")

        # In backend mode the front end must have tracked every swap
        # through NOTIFY pushes alone: its own RELOAD verb unused.
        if args.backend:
            if front.verb_counts.get("RELOAD", 0) or front.reloads:
                violations.staleness.append(
                    f"front end used RELOAD "
                    f"({front.verb_counts.get('RELOAD', 0)} verb, "
                    f"{front.reloads} reloads) — pushes should have "
                    f"carried every swap")
            if reloads and front.resyncs < 1:
                violations.staleness.append(
                    "no NOTIFY-driven resyncs observed")

        stop.set()
        requests = sum(await asyncio.gather(*clients))
        admin.close()
        for conn in backend_admin.values():
            conn.close()
        server.close()
        await server.wait_closed()
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=10)

    latencies.sort()
    p99 = latencies[int(len(latencies) * 0.99)] if latencies else 0.0
    result = {
        "nodes": args.nodes,
        "shards": scenario.regions,
        "events": len(scenario.stream),
        "seed": args.seed,
        "backend": args.backend,
        "dispatch": args.dispatch,
        "cache": bool(args.cache),
        "cache_hits": front.cache.hits if front.cache else 0,
        "cache_misses": front.cache.misses if front.cache else 0,
        "cache_invalidations": (front.cache.invalidations
                                if front.cache else 0),
        "reloads": reloads,
        "resyncs": front.resyncs,
        "scratch_oracle_checks": scratch_checks,
        "client_requests": requests,
        "replay_sec": round(replay_s, 3),
        "events_per_sec": round(len(scenario.stream) / replay_s, 2)
        if replay_s else 0.0,
        "p99_lookup_ms": round(p99 * 1000, 3),
        "max_notify_staleness_ms": round(max_staleness * 1000, 3),
        "violations": violations.total(),
    }
    result["_violations"] = violations
    return result


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        description="churn soak: replay a revision stream against a "
                    "live cluster and verify every served answer")
    parser.add_argument("--nodes", type=int, default=2000)
    parser.add_argument("--events", type=int, default=200)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--regions", type=int, default=None,
                        help="shard count (default: auto-scale)")
    parser.add_argument("--hubs", type=int, default=8,
                        help="table-owning hubs per shard")
    parser.add_argument("--backend", action="store_true",
                        help="spawn one shard daemon per region and "
                             "reload them directly (NOTIFY path)")
    parser.add_argument("--dispatch", choices=("fsm", "dict"),
                        default="fsm",
                        help="suffix-dispatch engine for the cluster "
                             "under test (the oracle always walks "
                             "dicts, so the default differentially "
                             "proves the compiled automaton)")
    parser.add_argument("--cache", action="store_true",
                        help="turn the generation-stamped result "
                             "cache on across the cluster under test "
                             "and byte-compare its replies against "
                             "the always-uncached oracle — the proof "
                             "that no stale answer survives any "
                             "RELOAD/NOTIFY invalidation")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--samples", type=int, default=6,
                        help="differential probes per generation")
    parser.add_argument("--oracle-every", type=int, default=50,
                        help="from-scratch snapshot byte-compare "
                             "cadence in generations (0 disables)")
    parser.add_argument("--staleness-sec", type=float, default=10.0,
                        help="backend-reload visibility bound")
    parser.add_argument("--no-pipeline", action="store_true")
    parser.add_argument("--workdir", default=None)
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write the metrics dict to this file")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.workdir:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        result = asyncio.run(_soak(args, workdir))
    else:
        with tempfile.TemporaryDirectory(prefix="soak-") as tmp:
            result = asyncio.run(_soak(args, Path(tmp)))

    violations: Violations = result.pop("_violations")
    print(f"soak: {result['events']} events replayed in "
          f"{result['replay_sec']}s "
          f"({result['events_per_sec']} events/s), "
          f"{result['reloads']} reloads, "
          f"{result['client_requests']} client requests, "
          f"p99 {result['p99_lookup_ms']}ms", flush=True)
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(result, indent=2) + "\n", encoding="utf-8")
    if violations.total():
        print(f"soak: FAILED with {violations.total()} violation(s)")
        for line in violations.report():
            print(line)
        return 1
    print("soak: OK — zero violations, zero drops, zero fallbacks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
